#!/usr/bin/env python3
"""CI bench runner: execute the benchmark suite, archive and diff results.

Wrapper over ``pytest benchmarks/ --benchmark-json`` for CI jobs and
local regression hunting.  Writes the machine-readable record (timings
plus each bench's ``extra_info`` headline numbers) to ``BENCH_9.json`` at
the repository root by default, then diffs it against the newest previous
``BENCH_N.json`` artifact: any benchmark present in both runs whose
best-of (``stats.min``) time regressed by more than the tolerance fails
the gate, so a perf PR cannot silently undo an earlier one.  Run from
the repository root:

    PYTHONPATH=src python tools/bench_gate.py [--out BENCH_9.json]
        [--baseline BENCH_8.json] [--no-compare] [--tolerance 0.20]
        [--jobs N] [pytest args...]

``--jobs N`` sizes the orchestrator's worker pool for the report
benchmarks (exported as ``REPRO_BENCH_JOBS``).  Extra arguments are
forwarded to pytest, e.g. ``-k fig6`` to time a single experiment (the
comparison only covers whatever actually ran).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default artifact name; the suffix tracks the PR sequence.
DEFAULT_OUT = "BENCH_10.json"

#: Allowed relative slowdown of a previously recorded best-of time.
#: Benchmarks share CI machines with noisy neighbours; 20% separates a
#: real regression from scheduling jitter on the best-of-N minimum.
DEFAULT_TOLERANCE = 0.20

_ARTIFACT_RE = re.compile(r"^BENCH_(\d+)\.json$")


def load_benchmarks(path: Path) -> dict[str, float]:
    """Map benchmark name -> best-of (``stats.min``) seconds."""
    with open(path) as fh:
        record = json.load(fh)
    return {
        bench["name"]: float(bench["stats"]["min"])
        for bench in record.get("benchmarks", [])
    }


def find_baseline(root: Path, exclude: Path) -> Path | None:
    """The highest-numbered ``BENCH_N.json`` at ``root`` besides ``exclude``."""
    best: tuple[int, Path] | None = None
    for candidate in root.glob("BENCH_*.json"):
        match = _ARTIFACT_RE.match(candidate.name)
        if match is None or candidate.resolve() == exclude.resolve():
            continue
        number = int(match.group(1))
        if best is None or number > best[0]:
            best = (number, candidate)
    return best[1] if best else None


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    tolerance: float,
) -> tuple[list[str], list[str]]:
    """(regressions, report lines) for benchmarks present in both runs."""
    regressions: list[str] = []
    lines: list[str] = []
    for name in sorted(baseline):
        if name not in current:
            continue
        old, new = baseline[name], current[name]
        if old <= 0.0:
            continue
        ratio = new / old
        status = "ok"
        if ratio > 1.0 + tolerance:
            status = "REGRESSED"
            regressions.append(name)
        lines.append(
            f"  {status:>9}  {name}: {old:.6f}s -> {new:.6f}s ({ratio:.2f}x)"
        )
    return regressions, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_gate",
        description=(
            "run benchmarks/, write a --benchmark-json artifact, and fail "
            "on regressions against the previous artifact"
        ),
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / DEFAULT_OUT),
        help=f"benchmark JSON artifact (default: {DEFAULT_OUT} at the root)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "previous artifact to diff against (default: the highest-"
            "numbered BENCH_N.json at the root other than --out)"
        ),
    )
    parser.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the baseline diff (first run of a new sequence)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        metavar="FRAC",
        help=(
            "allowed relative slowdown of a baseline best-of time "
            f"(default: {DEFAULT_TOLERANCE})"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the report benchmarks (REPRO_BENCH_JOBS)",
    )
    args, pytest_args = parser.parse_known_args(argv)

    command = [
        sys.executable,
        "-m",
        "pytest",
        str(REPO_ROOT / "benchmarks"),
        "-q",
        f"--benchmark-json={args.out}",
        *pytest_args,
    ]
    env_path = str(REPO_ROOT / "src")
    env = dict(os.environ)
    env["REPRO_BENCH_JOBS"] = str(args.jobs)
    env["PYTHONPATH"] = (
        env_path + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else env_path
    )
    code = subprocess.call(command, cwd=REPO_ROOT, env=env)
    artifact = Path(args.out)
    if code != 0:
        print(f"bench gate FAILED: pytest exit {code}", file=sys.stderr)
        return code
    if not artifact.is_file():
        print(f"bench gate FAILED: no artifact at {artifact}", file=sys.stderr)
        return 1

    if args.no_compare:
        print(f"bench gate ok (comparison skipped): results in {artifact}")
        return 0
    baseline_path = (
        Path(args.baseline)
        if args.baseline
        else find_baseline(artifact.resolve().parent, artifact)
    )
    if baseline_path is None:
        print(f"bench gate ok (no baseline found): results in {artifact}")
        return 0
    regressions, lines = compare(
        load_benchmarks(baseline_path),
        load_benchmarks(artifact),
        args.tolerance,
    )
    print(f"bench gate: {artifact.name} vs baseline {baseline_path.name}")
    for line in lines:
        print(line)
    if regressions:
        print(
            f"bench gate FAILED: {len(regressions)} benchmark(s) regressed "
            f"beyond {args.tolerance:.0%}: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"bench gate ok: results in {artifact}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
