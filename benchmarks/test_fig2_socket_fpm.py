"""Benchmark: regenerate Figure 2 (socket speed functions s5, s6)."""

from repro.experiments import fig2_socket_fpm


def test_fig2_socket_speed_functions(benchmark, config):
    result = benchmark(fig2_socket_fpm.run, config)
    print()
    print(fig2_socket_fpm.format_result(result))
    # paper shape: s6 above s5, plateaus near 105 / 92 GFlops
    assert all(b > a for a, b in zip(result.s5, result.s6))
    assert 95 <= result.plateau("s6") <= 115
    assert 82 <= result.plateau("s5") <= 102
    benchmark.extra_info["s6_plateau_gflops"] = round(result.plateau("s6"), 1)
    benchmark.extra_info["s5_plateau_gflops"] = round(result.plateau("s5"), 1)
    benchmark.extra_info["paper_s6_plateau"] = 105.0
    benchmark.extra_info["paper_s5_plateau"] = 92.0
