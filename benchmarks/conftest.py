"""Benchmark configuration: one bench per paper table/figure.

Each benchmark times its experiment end-to-end on the fast configuration
(the shapes are resolution-independent), prints the regenerated rows /
series, and attaches headline numbers to the benchmark record via
``extra_info`` so ``--benchmark-json`` exports carry the measured paper
comparison.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentConfig


@pytest.fixture(scope="session")
def config():
    """Deterministic fast configuration shared by every bench."""
    return ExperimentConfig(seed=42, noise_sigma=0.02, fast=True)
