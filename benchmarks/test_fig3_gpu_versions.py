"""Benchmark: regenerate Figure 3 (GTX680 kernel versions 1/2/3)."""

from repro.experiments import fig3_gpu_versions


def test_fig3_gpu_kernel_versions(benchmark, config):
    result = benchmark(fig3_gpu_versions.run, config)
    print()
    print(fig3_gpu_versions.format_result(result))

    in_core = [i for i in result.in_core_sizes() if result.sizes[i] > 300]
    v2_over_v1 = sum(result.v2[i] / result.v1[i] for i in in_core) / len(in_core)
    out = result.out_of_core_sizes()
    near = [i for i in out if result.sizes[i] <= 2 * result.memory_limit_blocks]
    v3_gain = sum(result.v3[i] / result.v2[i] for i in near) / len(near) - 1

    # paper shape: v2 ~2x v1 resident; cliff at the limit; v3 ~+30% past it
    assert 1.5 <= v2_over_v1 <= 2.7
    assert result.v2[out[0]] < 0.7 * max(result.v2[i] for i in result.in_core_sizes())
    assert 0.15 <= v3_gain <= 0.9
    benchmark.extra_info["v2_over_v1_in_core"] = round(v2_over_v1, 2)
    benchmark.extra_info["v3_gain_out_of_core"] = round(v3_gain, 2)
    benchmark.extra_info["memory_limit_blocks"] = round(result.memory_limit_blocks)
    benchmark.extra_info["paper_v2_over_v1"] = 2.0
    benchmark.extra_info["paper_v3_gain"] = 0.30
    benchmark.extra_info["paper_memory_limit"] = 1200
