"""Benchmark: regenerate Table III (CPM vs FPM block allocations)."""

from repro.experiments import table3_partitioning


def test_table3_partitioning(benchmark, config):
    result = benchmark(table3_partitioning.run, config)
    print()
    print(table3_partitioning.format_result(result))

    # paper shape: CPM keeps overloading G1 (ratio ~8 at 70x70); FPM tracks
    # the GPU's decline (ratio toward ~4.5)
    assert result.cpm_row(70).ratio_g1_s6() > 6.5
    assert 3.2 <= result.fpm_row(70).ratio_g1_s6() <= 6.0
    for n in (50, 60, 70):
        assert result.cpm_row(n).g1 > result.fpm_row(n).g1

    for n in result.sizes:
        f = result.fpm_row(n)
        benchmark.extra_info[f"fpm_{n}"] = (f.g1, f.g2, f.s5, f.s6)
        c = result.cpm_row(n)
        benchmark.extra_info[f"cpm_{n}"] = (c.g1, c.g2, c.s5, c.s6)
