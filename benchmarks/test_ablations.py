"""Benchmarks: the ablation studies (design choices beyond the paper)."""

from repro.experiments.ablations import (
    aspect_ratio,
    blocking_factor,
    comm_aware,
    cpm_calibration,
    dma_engines,
    dynamic_vs_static,
    gpu_kernel_version,
    hierarchical_cluster,
    noise_sensitivity,
    online_fpm,
    task_granularity,
)


def test_ablation_blocking_factor(benchmark, config):
    result = benchmark(blocking_factor.run, config)
    print()
    print(blocking_factor.format_result(result))
    assert result.best_factor in (320, 640, 1280)
    benchmark.extra_info["best_factor"] = result.best_factor
    benchmark.extra_info["paper_factor"] = 640


def test_ablation_dynamic_vs_static(benchmark, config):
    result = benchmark(dynamic_vs_static.run, config)
    print()
    print(dynamic_vs_static.format_result(result))
    assert result.fpm_time <= result.dynamic_time <= result.homogeneous_time
    benchmark.extra_info["fpm_s"] = round(result.fpm_time, 1)
    benchmark.extra_info["dynamic_s"] = round(result.dynamic_time, 1)
    benchmark.extra_info["homogeneous_s"] = round(result.homogeneous_time, 1)


def test_ablation_noise_sensitivity(benchmark, config):
    result = benchmark(noise_sensitivity.run, config, (0.0, 0.05, 0.2))
    print()
    print(noise_sensitivity.format_result(result))
    reps = [p.repetitions_total for p in result.points]
    assert reps == sorted(reps)
    benchmark.extra_info["reps_by_sigma"] = reps


def test_ablation_cpm_calibration(benchmark, config):
    result = benchmark(cpm_calibration.run, config)
    print()
    print(cpm_calibration.format_result(result))
    for cal in result.calibrations:
        assert result.regret(cal) > 1.1
    benchmark.extra_info["regrets"] = {
        str(cal): round(result.regret(cal), 2) for cal in result.calibrations
    }


def test_ablation_hierarchical_cluster(benchmark, config):
    result = benchmark(hierarchical_cluster.run, config)
    print()
    print(hierarchical_cluster.format_result(result))
    assert result.agreement_l1 < 0.03
    benchmark.extra_info["node_allocations"] = list(result.node_allocations)
    benchmark.extra_info["hierarchy_overhead"] = round(
        result.hierarchy_overhead, 4
    )


def test_ablation_dma_engines(benchmark, config):
    result = benchmark(dma_engines.run, config)
    print()
    print(dma_engines.format_result(result))
    assert result.mean_gain(2) > result.mean_gain(1) > 0.05
    benchmark.extra_info["gain_1_engine"] = round(result.mean_gain(1), 2)
    benchmark.extra_info["gain_2_engines"] = round(result.mean_gain(2), 2)


def test_ablation_online_fpm(benchmark, config):
    result = benchmark(online_fpm.run, config)
    print()
    print(online_fpm.format_result(result))
    assert result.online_converged
    assert result.allocation_distance < 0.08
    benchmark.extra_info["measurement_saving"] = round(
        result.measurement_saving, 2
    )
    benchmark.extra_info["rounds"] = result.online_rounds


def test_ablation_task_granularity(benchmark, config):
    result = benchmark(task_granularity.run, config)
    print()
    print(task_granularity.format_result(result))
    assert result.fpm_makespan <= result.best_makespan * 1.05
    benchmark.extra_info["best_chunk"] = result.best_chunk
    benchmark.extra_info["fpm_vs_best_chunk"] = round(
        result.fpm_makespan / result.best_makespan, 3
    )


def test_ablation_gpu_kernel_version(benchmark, config):
    result = benchmark(gpu_kernel_version.run, config)
    print()
    print(gpu_kernel_version.format_result(result))
    big = result.sizes[-1]
    assert result.time_of(3, big) <= result.time_of(1, big)
    benchmark.extra_info["app_gain_v3_over_v1"] = round(
        result.app_gain_v3_over_v1(big), 2
    )


def test_ablation_aspect_ratio(benchmark, config):
    result = benchmark(aspect_ratio.run, config)
    print()
    print(aspect_ratio.format_result(result))
    assert result.worst_near_square < 0.05
    benchmark.extra_info["near_square_spread"] = round(
        result.worst_near_square, 3
    )
    benchmark.extra_info["extreme_spread"] = round(result.worst_extreme, 3)


def test_ablation_comm_aware(benchmark, config):
    result = benchmark(comm_aware.run, config)
    print()
    print(comm_aware.format_result(result))
    assert result.blocks_moved[0] == 0  # paper bandwidth: nothing to fix
    benchmark.extra_info["savings"] = {
        str(bw): round(result.saving(bw), 4) for bw in result.bandwidths_gbs
    }
