"""Benchmark: regenerate Figure 5 (CPU/GPU contention impact)."""

from repro.experiments import fig5_contention


def test_fig5_contention_impact(benchmark, config):
    result = benchmark(fig5_contention.run, config)
    print()
    print(fig5_contention.format_result(result))
    for s in result.shared:
        # paper: GPU drops 7-15% (85% model accuracy), CPU barely moves
        assert 0.04 <= s.mean_gpu_drop <= 0.18
        assert s.mean_cpu_drop < 0.05
        benchmark.extra_info[f"gpu_drop_{s.label}"] = round(s.mean_gpu_drop, 3)
        benchmark.extra_info[f"cpu_drop_{s.label}"] = round(s.mean_cpu_drop, 3)
    benchmark.extra_info["paper_gpu_drop_range"] = "0.07-0.15"
