"""Benchmark: cold FPM construction on the vectorised measurement engine.

Times the batch fast path (``measure_speeds`` / ``FpmBuilder``) and compares
it against the scalar repeat-until-reliable oracle it must stay bit-identical
to.  The headline gate: a cold fig2-style sweep must run at least 3x faster
batched than the per-repetition scalar loop.
"""

from __future__ import annotations

import time

from repro.experiments.common import make_bench
from repro.measurement.fpm_builder import FpmBuilder, SizeGrid
from repro.measurement.reliability import (
    ReliabilityCriterion,
    measure_until_reliable_batch,
)
from repro.platform.noise import NoiseModel
from repro.util.rng import RngStream

#: The fig2-style sweep: socket kernel across the figure's size range.
SWEEP_SIZES = SizeGrid.linear(12.0, 1200.0, 24).sizes


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_fpm_cold_sweep_batch_vs_scalar(benchmark, config):
    """The tentpole gate: batched sweep >= 3x faster than the scalar oracle."""
    bench = make_bench(config)
    kernel = bench.socket_kernel(0, 5)

    batch_result = benchmark(bench.measure_speeds, kernel, SWEEP_SIZES)

    scalar_s = _best_of(
        lambda: [bench.measure_speed(kernel, s) for s in SWEEP_SIZES]
    )
    batch_s = _best_of(lambda: bench.measure_speeds(kernel, SWEEP_SIZES))
    speedup = scalar_s / batch_s

    # same floats, just faster
    scalar_result = [bench.measure_speed(kernel, s) for s in SWEEP_SIZES]
    assert [m.speed_gflops for m in batch_result] == [
        m.speed_gflops for m in scalar_result
    ]
    assert speedup >= 3.0, (
        f"batch sweep only {speedup:.2f}x faster than the scalar oracle"
    )
    benchmark.extra_info["sweep_points"] = len(SWEEP_SIZES)
    benchmark.extra_info["scalar_ms"] = round(scalar_s * 1e3, 2)
    benchmark.extra_info["batch_ms"] = round(batch_s * 1e3, 2)
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 2)


def test_fpm_single_grid_build(benchmark, config):
    """Adaptive FPM construction for one GPU unit, end to end."""
    bench = make_bench(config)
    kernel = bench.gpu_kernel(1, config.gpu_version)
    grid = SizeGrid.geometric(12.0, 4000.0, 12)
    builder = FpmBuilder(bench)

    model = benchmark(builder.build, kernel, grid, adaptive=True)

    assert len(model.speed_function.samples) >= len(grid.sizes)
    benchmark.extra_info["grid_points"] = len(grid.sizes)
    benchmark.extra_info["model_samples"] = len(model.speed_function.samples)
    benchmark.extra_info["repetitions_total"] = model.repetitions_total


def test_reliability_loop_batch(benchmark):
    """The inner repeat-until-reliable protocol on chunked noise draws."""
    noise = NoiseModel(RngStream(42).child("bench"), 0.05)
    criterion = ReliabilityCriterion(rel_err=0.01, max_repetitions=100)

    def sample_batch(start, count):
        return noise.perturb_batch(
            1.0, ("kernel",), [f"r{r}" for r in range(start, start + count)]
        )

    m = benchmark(measure_until_reliable_batch, sample_batch, criterion)
    assert m.reliable
    benchmark.extra_info["repetitions"] = m.repetitions
