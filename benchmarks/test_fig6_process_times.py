"""Benchmark: regenerate Figure 6 (per-process computation times, 60x60)."""

from repro.experiments import fig6_process_times


def test_fig6_process_computation_times(benchmark, config):
    result = benchmark(fig6_process_times.run, config)
    print()
    print(fig6_process_times.format_result(result))

    # paper shape: under CPM the GTX680 process straggles; FPM levels the
    # profile and cuts the computation makespan (~40% in the paper)
    assert result.straggler_rank(result.cpm_times) == result.dedicated_ranks[1]
    assert result.imbalance(result.fpm_times) < result.imbalance(result.cpm_times)
    assert 0.15 <= result.computation_cut <= 0.6

    benchmark.extra_info["cpm_makespan_s"] = round(result.cpm_makespan, 1)
    benchmark.extra_info["fpm_makespan_s"] = round(result.fpm_makespan, 1)
    benchmark.extra_info["computation_cut"] = round(result.computation_cut, 2)
    benchmark.extra_info["paper_computation_cut"] = 0.40
