"""Benchmark: the second application (Jacobi stencil) under FPM balancing."""

from repro.experiments import jacobi_app


def test_jacobi_second_application(benchmark, config):
    result = benchmark(jacobi_app.run, config)
    print()
    print(jacobi_app.format_result(result))

    # the application-specific FPM story: GPUs pinned near their stencil
    # capacity, FPM beating both baselines, near-perfect balance
    gtx = result.allocation_of("GeForce GTX680")
    assert 0.9 * result.gtx_capacity_rows <= gtx <= 1.3 * result.gtx_capacity_rows
    assert result.fpm_time < result.homogeneous_time < result.cpm_time
    assert result.fpm_imbalance < 1.3

    benchmark.extra_info["fpm_s"] = round(result.fpm_time, 1)
    benchmark.extra_info["homogeneous_s"] = round(result.homogeneous_time, 1)
    benchmark.extra_info["cpm_s"] = round(result.cpm_time, 1)
    benchmark.extra_info["speedup_vs_homogeneous"] = round(
        result.fpm_speedup_vs_homogeneous, 2
    )
