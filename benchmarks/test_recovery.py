"""Benchmark: recovery re-solve cost and the fault layer's fault-free tax.

Two gates ride on this bench:

* the recovery pipeline (drop -> re-solve -> replay) is cheap relative
  to a fault-free run's planning cost — it reuses the same partitioner;
* installing the fault layer **disabled** (``faults=None`` vs an inert
  :class:`FaultPlan`) costs less than 5% on the measurement hot path:
  the guard is one branch, and an inert plan short-circuits before any
  hashing.
"""

from __future__ import annotations

import time

from repro.measurement.benchmark import HybridBenchmark
from repro.app.matmul import HybridMatMul
from repro.platform.faults import DeviceDrop, FaultPlan
from repro.platform.presets import ig_icl_node
from repro.runtime.recovery import run_with_recovery

#: the fig2-style hot path used for the fault-free-overhead gate.
SWEEP_SIZES = tuple(float(s) for s in range(12, 1200, 50))
N = 40


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _app():
    app = HybridMatMul(ig_icl_node(), seed=7, noise_sigma=0.01)
    app.build_models(
        max_blocks=1700.0, cpu_points=6, gpu_points=8, adaptive=False
    )
    return app


def test_recovery_resolve_cost(benchmark):
    """Time the full degraded run (drop at half the makespan)."""
    app = _app()
    fault_free = run_with_recovery(app, N, drops=()).fault_free_time_s
    drop = DeviceDrop(time_s=0.5 * fault_free, device="GeForce GTX680")

    result = benchmark(run_with_recovery, app, N, (drop,))

    assert sum(result.degraded_unit_allocations) == N * N
    benchmark.extra_info["blocks_migrated"] = result.blocks_migrated
    benchmark.extra_info["overhead_fraction"] = round(
        result.overhead_fraction, 4
    )


def test_fault_layer_disabled_is_free(benchmark):
    """Gate: inert fault plan within 5% of no plan on the hot path."""
    node = ig_icl_node()
    clean = HybridBenchmark(node, seed=31, noise_sigma=0.01)
    inert = HybridBenchmark(
        node, seed=31, noise_sigma=0.01, faults=FaultPlan.from_spec("", seed=31)
    )
    kernel_c = clean.socket_kernel(0, 5)
    kernel_i = inert.socket_kernel(0, 5)

    # same floats first (the gate is about cost, not behaviour)
    want = [m.speed_gflops for m in clean.measure_speeds(kernel_c, SWEEP_SIZES)]
    got = [m.speed_gflops for m in inert.measure_speeds(kernel_i, SWEEP_SIZES)]
    assert got == want

    clean_s = _best_of(lambda: clean.measure_speeds(kernel_c, SWEEP_SIZES))
    inert_s = _best_of(lambda: inert.measure_speeds(kernel_i, SWEEP_SIZES))
    overhead = inert_s / clean_s - 1.0

    benchmark(inert.measure_speeds, kernel_i, SWEEP_SIZES)

    assert overhead < 0.05, (
        f"inert fault plan costs {100 * overhead:.1f}% on the measurement "
        f"hot path (gate: < 5%)"
    )
    benchmark.extra_info["sweep_points"] = len(SWEEP_SIZES)
    benchmark.extra_info["clean_ms"] = round(clean_s * 1e3, 2)
    benchmark.extra_info["inert_ms"] = round(inert_s * 1e3, 2)
    benchmark.extra_info["overhead_fraction"] = round(overhead, 4)
