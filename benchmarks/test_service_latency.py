"""Benchmark: the partition service's warm-hit latency and throughput.

The service PR's headline numbers: once a spec's answer is hot, the
daemon must serve it at interactive latency and high throughput — the
whole point of the answer/model LRUs over the content-addressed store.
The gates are deliberately lenient (an order of magnitude above the
measured figures) so they catch structural regressions — an accidental
cold build or store read on the hot path — not machine noise.

``extra_info`` archives the p50/p99 warm-hit latencies (from the
service's own ``service.request_s`` histogram, the same data /metrics
exposes) and the measured requests/second into ``BENCH_7.json``.
"""

from __future__ import annotations

import asyncio
import itertools
import json

from repro.service.core import REQUEST_LATENCY, PartitionService
from repro.store import ResultStore

#: Coarse knobs: the single cold build in the warm-up stays ~20 ms.
_MODEL = {
    "seed": 42,
    "noise_sigma": 0.01,
    "cpu_points": 4,
    "gpu_points": 5,
    "adaptive": False,
    "max_blocks": 1800.0,
}

BURST = 500


def _body(total_blocks: float) -> bytes:
    return json.dumps(
        {"preset": "cpu_only", "total_blocks": total_blocks, "model": _MODEL}
    ).encode("utf-8")


def test_warm_hit_latency_and_throughput(benchmark, tmp_path):
    service = PartitionService(store=ResultStore(tmp_path / "store"))
    hot = _body(1600.0)

    async def warm_up():
        await service.start()
        response = await service.handle("POST", "/partition", hot)
        assert response.status == 200

    asyncio.run(warm_up())

    def burst():
        async def run():
            responses = await asyncio.gather(
                *(service.handle("POST", "/partition", hot) for _ in range(BURST))
            )
            assert all(r.status == 200 for r in responses)
            assert all(r.json["source"] == "hot" for r in responses)

        asyncio.run(run())

    benchmark(burst)
    asyncio.run(service.aclose())

    hist = service.tracer.metrics.histograms[REQUEST_LATENCY]
    p50_s = hist.percentile(50)
    p99_s = hist.percentile(99)
    throughput_rps = BURST / benchmark.stats.stats.mean
    benchmark.extra_info["warm_p50_us"] = round(p50_s * 1e6, 1)
    benchmark.extra_info["warm_p99_us"] = round(p99_s * 1e6, 1)
    benchmark.extra_info["warm_hit_rps"] = round(throughput_rps, 1)

    # structural gates: a cold build (~20 ms) or store read on the hot
    # path would blow straight through these
    assert p50_s < 5e-3, f"warm-hit p50 {p50_s * 1e3:.2f} ms >= 5 ms"
    assert p99_s < 50e-3, f"warm-hit p99 {p99_s * 1e3:.2f} ms >= 50 ms"
    assert throughput_rps > 500.0, f"warm-hit throughput {throughput_rps:.0f} rps"


def test_warm_models_solve_latency(benchmark, tmp_path):
    """Distinct sizes against one hot model set: the solve-only path."""
    service = PartitionService(store=ResultStore(tmp_path / "store"))
    fresh_totals = itertools.count(100)

    async def warm_up():
        await service.start()
        response = await service.handle("POST", "/partition", _body(50.0))
        assert response.status == 200

    asyncio.run(warm_up())

    def solve_batch():
        async def run():
            bodies = [_body(float(next(fresh_totals))) for _ in range(50)]
            responses = await asyncio.gather(
                *(service.handle("POST", "/partition", raw) for raw in bodies)
            )
            assert all(r.status == 200 for r in responses)
            # never "built": the model set stays in the LRU throughout
            assert all(r.json["source"] == "warm" for r in responses)

        asyncio.run(run())

    benchmark(solve_batch)
    asyncio.run(service.aclose())

    solve_ms = benchmark.stats.stats.mean / 50 * 1e3
    benchmark.extra_info["warm_solve_ms"] = round(solve_ms, 3)
    assert solve_ms < 50.0, f"warm-models solve {solve_ms:.1f} ms >= 50 ms"
