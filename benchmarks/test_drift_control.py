"""Benchmark: the drift controller's cost and its quality gates.

Three gates ride on this bench:

* **no oscillation** — under pure measurement noise on a stationary
  platform the controller never repartitions (zero commits, zero
  rejects, zero detections);
* **one decision per change** — a hard step throttle is answered by
  exactly one committed repartition;
* **gain recovery** — on the throttle-ramp scenario the controller
  recovers at least half of the oracle repartitioner's makespan gain
  over the static FPM baseline.
"""

from __future__ import annotations

from repro.app.matmul import HybridMatMul
from repro.platform.drift import DriftModel
from repro.platform.noise import NoiseModel
from repro.platform.presets import ig_icl_node
from repro.runtime.drift_control import run_with_drift_control
from repro.util.rng import RngStream

N = 40
STEP = "throttle:GTX680:t0=2,tau=0,floor=0.5"
RAMP = "throttle:GTX680:t0=2,tau=10,floor=0.45"


def _app():
    app = HybridMatMul(ig_icl_node(), seed=7, noise_sigma=0.01)
    app.build_models(
        max_blocks=1700.0, cpu_points=6, gpu_points=8, adaptive=False
    )
    return app


def _noise():
    return NoiseModel(RngStream(123).child("panel-noise"), sigma=0.01)


def test_drift_controller_run_cost(benchmark):
    """Time the controlled run on the step throttle; gate its decisions."""
    app = _app()
    drift = DriftModel.from_spec(STEP, seed=11)
    noise = _noise()

    result = benchmark(
        run_with_drift_control, app, N, drift, mode="controller", noise=noise
    )

    assert result.commits == 1, "a step change must repartition exactly once"
    assert result.detections == 1
    assert sum(result.final_unit_allocations) == N * N
    benchmark.extra_info["commits"] = result.commits
    benchmark.extra_info["blocks_migrated"] = result.blocks_migrated
    benchmark.extra_info["makespan_s"] = round(result.total_time_s, 3)


def test_drift_controller_quality_gates(benchmark):
    """Gate: >= 50% of the oracle gain on the ramp, none wasted on noise."""
    app = _app()
    noise = _noise()
    ramp = DriftModel.from_spec(RAMP, seed=11)

    quiet = run_with_drift_control(
        app, N, DriftModel.from_spec("", seed=11), mode="controller", noise=noise
    )
    assert quiet.commits == 0 and quiet.rejects == 0 and quiet.detections == 0, (
        "the controller repartitioned on pure measurement noise"
    )

    runs = {
        mode: run_with_drift_control(app, N, ramp, mode=mode, noise=noise)
        for mode in ("static", "controller", "oracle")
    }
    gain_ctl = runs["static"].total_time_s - runs["controller"].total_time_s
    gain_oracle = runs["static"].total_time_s - runs["oracle"].total_time_s
    assert gain_oracle > 0
    recovered = gain_ctl / gain_oracle
    assert recovered >= 0.5, (
        f"controller recovers {100 * recovered:.0f}% of the oracle gain "
        f"on the throttle ramp (gate: >= 50%)"
    )

    benchmark(run_with_drift_control, app, N, ramp, mode="oracle", noise=noise)

    benchmark.extra_info["static_s"] = round(runs["static"].total_time_s, 3)
    benchmark.extra_info["controller_s"] = round(
        runs["controller"].total_time_s, 3
    )
    benchmark.extra_info["oracle_s"] = round(runs["oracle"].total_time_s, 3)
    benchmark.extra_info["gain_recovered"] = round(recovered, 4)
    benchmark.extra_info["controller_commits"] = runs["controller"].commits
