"""Microbenchmarks of the partitioning algorithms themselves.

The FPM partitioner runs a bisection whose every step queries each model's
inverse time function — these benches pin its cost and scaling so a
performance regression in the core algorithm is caught independently of
the (much heavier) experiment pipelines.
"""

import pytest

from repro.core.geometry import column_based_partition
from repro.core.integer import round_partition
from repro.core.partition import balance_report, partition_fpm
from repro.core.speed_function import SpeedFunction


def ramped(peak, half):
    sizes = [half / 4, half, 2 * half, 8 * half, 32 * half]
    return SpeedFunction.from_points(
        sizes, [peak * s / (s + half) for s in sizes]
    )


@pytest.fixture(scope="module")
def heterogeneous_models():
    """100 devices spanning two orders of magnitude in speed."""
    return [
        ramped(20.0 * (1.05**i), 10.0 + (7 * i) % 90) for i in range(100)
    ]


def test_partition_fpm_100_devices(benchmark, heterogeneous_models):
    total = 1e6
    alloc = benchmark(partition_fpm, heterogeneous_models, total)
    assert sum(alloc) == pytest.approx(total, rel=1e-6)
    assert balance_report(heterogeneous_models, alloc).imbalance < 1.01


def test_integer_rounding_100_devices(benchmark, heterogeneous_models):
    total = 100_000
    continuous = partition_fpm(heterogeneous_models, float(total))
    alloc = benchmark(
        round_partition, heterogeneous_models, continuous, total
    )
    assert sum(alloc) == total


def test_column_geometry_100_rectangles(benchmark):
    n = 100
    allocs = [100] * 100  # 100 processors, 100 blocks each on a 100x100 grid
    partition = benchmark(column_based_partition, allocs, n)
    partition.validate_tiling()


def test_partition_scaling_is_subquadratic(heterogeneous_models):
    """Doubling the device count far less than quadruples the cost."""
    import time

    def cost(p):
        models = heterogeneous_models[:p]
        start = time.perf_counter()
        for _ in range(3):
            partition_fpm(models, 1e5)
        return (time.perf_counter() - start) / 3

    small, large = cost(25), cost(100)
    assert large < 16 * small  # 4x devices, allow 16x before alarming


# ---------------------------------------------------------------------------
# cluster scale: the vectorized solver and the two-level hierarchy
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cluster_models(heterogeneous_models):
    """10,000 devices (the 100-device zoo tiled with varied half-sizes)."""
    return [
        ramped(20.0 * (1.05 ** (i % 100)), 10.0 + (7 * i) % 90)
        for i in range(10_000)
    ]


def test_partition_fpm_10000_devices(benchmark, cluster_models):
    total = 1e7
    alloc = benchmark(partition_fpm, cluster_models, total)
    assert sum(alloc) == pytest.approx(total, rel=1e-6)
    benchmark.extra_info["devices"] = len(cluster_models)


def test_hierarchical_1000_nodes(benchmark):
    """1000-node x 10-device cluster; 4 distinct node builds."""
    from repro.core.hierarchical import hierarchical_partition

    node_types = [
        [ramped(15.0 + 3 * k + 0.8 * j, 12.0 + 5 * j) for j in range(10)]
        for k in range(4)
    ]
    cluster = [node_types[i % 4] for i in range(1000)]
    total = 1_000_000
    tree = benchmark(
        hierarchical_partition, cluster, total, aggregate_samples=16
    )
    assert sum(tree.node_allocations) == total
    assert sum(tree.flat) == total
    benchmark.extra_info["nodes"] = len(cluster)
    benchmark.extra_info["units"] = 10 * len(cluster)


def test_vectorized_solver_speedup_gate(heterogeneous_models):
    """The batch solver must hold >= 10x over its scalar oracle at p=100.

    Both paths share the Illinois driver and produce bit-identical
    allocations (tests/core/test_batch_identity.py); this gate pins the
    *reason* the batch path exists.  Best-of-5 timings keep CI noise out
    of the ratio.
    """
    import time

    from repro.core.partition import partition_fpm_scalar

    total = 1e6
    # warm the per-model row caches so both paths time pure solves
    partition_fpm(heterogeneous_models, total)
    partition_fpm_scalar(heterogeneous_models, total)

    def best_of(fn, reps=5):
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    batch = best_of(lambda: partition_fpm(heterogeneous_models, total))
    scalar = best_of(lambda: partition_fpm_scalar(heterogeneous_models, total))
    assert scalar / batch >= 10.0, (
        f"vectorized solver speedup degraded: {scalar / batch:.1f}x "
        f"(batch {batch * 1e6:.0f} us, scalar {scalar * 1e6:.0f} us)"
    )
