"""Microbenchmarks of the partitioning algorithms themselves.

The FPM partitioner runs a bisection whose every step queries each model's
inverse time function — these benches pin its cost and scaling so a
performance regression in the core algorithm is caught independently of
the (much heavier) experiment pipelines.
"""

import pytest

from repro.core.geometry import column_based_partition
from repro.core.integer import round_partition
from repro.core.partition import balance_report, partition_fpm
from repro.core.speed_function import SpeedFunction


def ramped(peak, half):
    sizes = [half / 4, half, 2 * half, 8 * half, 32 * half]
    return SpeedFunction.from_points(
        sizes, [peak * s / (s + half) for s in sizes]
    )


@pytest.fixture(scope="module")
def heterogeneous_models():
    """100 devices spanning two orders of magnitude in speed."""
    return [
        ramped(20.0 * (1.05**i), 10.0 + (7 * i) % 90) for i in range(100)
    ]


def test_partition_fpm_100_devices(benchmark, heterogeneous_models):
    total = 1e6
    alloc = benchmark(partition_fpm, heterogeneous_models, total)
    assert sum(alloc) == pytest.approx(total, rel=1e-6)
    assert balance_report(heterogeneous_models, alloc).imbalance < 1.01


def test_integer_rounding_100_devices(benchmark, heterogeneous_models):
    total = 100_000
    continuous = partition_fpm(heterogeneous_models, float(total))
    alloc = benchmark(
        round_partition, heterogeneous_models, continuous, total
    )
    assert sum(alloc) == total


def test_column_geometry_100_rectangles(benchmark):
    n = 100
    allocs = [100] * 100  # 100 processors, 100 blocks each on a 100x100 grid
    partition = benchmark(column_based_partition, allocs, n)
    partition.validate_tiling()


def test_partition_scaling_is_subquadratic(heterogeneous_models):
    """Doubling the device count far less than quadruples the cost."""
    import time

    def cost(p):
        models = heterogeneous_models[:p]
        start = time.perf_counter()
        for _ in range(3):
            partition_fpm(models, 1e5)
        return (time.perf_counter() - start) / 3

    small, large = cost(25), cost(100)
    assert large < 16 * small  # 4x devices, allow 16x before alarming
