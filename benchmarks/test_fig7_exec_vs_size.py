"""Benchmark: regenerate Figure 7 (execution time vs matrix size)."""

from repro.experiments import fig7_exec_vs_size


def test_fig7_execution_vs_size(benchmark, config):
    result = benchmark(fig7_exec_vs_size.run, config)
    print()
    print(fig7_exec_vs_size.format_result(result))

    # paper shape: FPM < CPM < homogeneous at scale; CPM diverges from FPM
    # once the GTX680 allocation exceeds device memory (n >= 50); FPM cuts
    # ~30% vs CPM and ~45% vs homogeneous in the large range
    for n in (50, 60, 70, 80):
        i = result.sizes.index(n)
        assert result.fpm[i] < result.cpm[i] < result.homogeneous[i]
    big = result.sizes[-1]
    assert result.cut_vs_cpm(big) >= 0.15
    assert result.cut_vs_homogeneous(big) >= 0.3

    benchmark.extra_info["cut_vs_cpm"] = round(result.cut_vs_cpm(big), 2)
    benchmark.extra_info["cut_vs_homogeneous"] = round(
        result.cut_vs_homogeneous(big), 2
    )
    benchmark.extra_info["paper_cut_vs_cpm"] = 0.30
    benchmark.extra_info["paper_cut_vs_homogeneous"] = 0.45
