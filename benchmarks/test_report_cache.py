"""Benchmark: the full report cold vs warm through the artifact store.

The headline number of the orchestrator PR: a warm store replays every
frozen experiment result, so the second ``repro report`` run costs disk
reads instead of benchmark sweeps.  ``cache_speedup`` in the archived
``extra_info`` records the measured cold/warm ratio; ``REPRO_BENCH_JOBS``
(set by ``tools/bench_gate.py --jobs N``) sizes the worker pool of the
cold run.
"""

import os
import time

from repro.experiments.orchestrator import run_full_report
from repro.store import ResultStore

JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def test_report_cold_vs_warm(benchmark, config, tmp_path):
    store = ResultStore(tmp_path / "store")

    t0 = time.perf_counter()
    cold_text = run_full_report(config, jobs=JOBS, store=store)
    cold_seconds = time.perf_counter() - t0

    warm_text = benchmark(run_full_report, config, store=store)
    assert warm_text == cold_text

    warm_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 3)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 4)
    benchmark.extra_info["cache_speedup"] = round(cold_seconds / warm_seconds, 1)
    assert cold_seconds / warm_seconds >= 5.0
