"""Cluster-scale runtime fast path: vectorized sim + warm re-solves.

Two speedup gates back this PR's headline numbers, each paired with a
bit-identity suite so the fast path cannot buy speed with drift:

* the batched event lane must hold >= 10x over the scalar event path on
  a 10,000-device x 100-panel simulated matmul run
  (tests/runtime/test_panel_loop.py holds the lanes bit-identical);
* a warm :meth:`Solver.resolve` after a handful of model refreshes must
  hold >= 3x over the cold solve it replaces at 10,000 devices
  (tests/core/test_resolve.py holds exact mode bit-identical).
"""

import time

import pytest

from repro.core.partition import partition_fpm
from repro.core.solver import Solver
from repro.core.speed_function import SpeedFunction
from repro.runtime.mpi_sim import CommModel, SimulatedComm
from repro.runtime.panel_loop import simulate_spmd_run

DEVICES = 10_000
PANELS = 100


def ramped(peak, half):
    sizes = [half / 4, half, 2 * half, 8 * half, 32 * half]
    return SpeedFunction.from_points(
        sizes, [peak * s / (s + half) for s in sizes]
    )


def make_cluster(devices=DEVICES):
    return [
        ramped(20.0 * (1.05 ** (i % 100)), 10.0 + (7 * i) % 90)
        for i in range(devices)
    ]


@pytest.fixture(scope="module")
def cluster_models():
    return make_cluster()


@pytest.fixture(scope="module")
def cluster_allocations(cluster_models):
    return partition_fpm(cluster_models, 1e7)


def _best_of(fn, reps):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_runtime_sim_vector_10000x100(
    benchmark, cluster_models, cluster_allocations
):
    comm = SimulatedComm(DEVICES, CommModel())
    result = benchmark(
        simulate_spmd_run,
        cluster_models,
        cluster_allocations,
        PANELS,
        comm=comm,
        engine="vector",
    )
    assert len(result.panel_finish_s) == PANELS
    benchmark.extra_info["devices"] = DEVICES
    benchmark.extra_info["panels"] = PANELS


def test_runtime_sim_speedup_gate(cluster_models, cluster_allocations):
    """Vector lane >= 10x over the scalar event path at 10,000 x 100.

    The scalar oracle walks one heap event per device per panel (a
    million events here) — timed once; the vector lane is best-of-3.
    Both lanes are bit-identical (tests/runtime/test_panel_loop.py and
    the hypothesis suite), so the ratio measures pure dispatch cost.
    """
    comm = SimulatedComm(DEVICES, CommModel())

    def run(engine):
        return simulate_spmd_run(
            cluster_models,
            cluster_allocations,
            PANELS,
            comm=comm,
            engine=engine,
        )

    run("vector")  # warm model row caches for both lanes

    vector = _best_of(lambda: run("vector"), reps=3)
    start = time.perf_counter()
    scalar_result = run("scalar")
    scalar = time.perf_counter() - start

    assert scalar_result.total_time_s == run("vector").total_time_s
    assert scalar / vector >= 10.0, (
        f"vectorized event lane speedup degraded: {scalar / vector:.1f}x "
        f"(vector {vector * 1e3:.1f} ms, scalar {scalar * 1e3:.1f} ms)"
    )


# ---------------------------------------------------------------------------
# warm-started incremental re-solves
# ---------------------------------------------------------------------------


def _perturbed(fn, factor):
    sizes = [s.size for s in fn.samples]
    speeds = [s.speed * factor for s in fn.samples]
    return SpeedFunction.from_points(sizes, speeds)


def test_warm_resolve_10000_devices(benchmark, cluster_models):
    solver = Solver()
    previous = solver.solve(cluster_models, 1e7)
    changed = {i: _perturbed(cluster_models[i], 1.1) for i in range(5)}
    result = benchmark(solver.resolve, previous, changed_models=changed)
    assert result.warm is not None
    benchmark.extra_info["devices"] = DEVICES
    benchmark.extra_info["changed_models"] = len(changed)


def test_warm_resolve_speedup_gate(cluster_models):
    """Warm resolve >= 3x over the cold solve it replaces at p=10,000.

    Each cold rep uses a freshly perturbed model list so the batch cache
    (keyed on model identity) cannot serve it a pre-stacked batch — the
    comparison is against what a cold caller actually pays.  Exact mode
    keeps warm allocations bit-identical to the cold ones
    (tests/core/test_resolve.py), so the ratio is pure restacking cost.
    """
    solver = Solver()
    previous = solver.solve(cluster_models, 1e7)

    def perturbation(rep):
        return {
            i: _perturbed(cluster_models[i], 1.0 + 0.01 * (rep + 1))
            for i in range(5)
        }

    reps = 3
    warm = float("inf")
    cold = float("inf")
    for rep in range(reps):
        changed = perturbation(rep)
        updated = list(cluster_models)
        for i, m in changed.items():
            updated[i] = m

        start = time.perf_counter()
        warm_result = solver.resolve(previous, changed_models=changed)
        warm = min(warm, time.perf_counter() - start)

        start = time.perf_counter()
        cold_result = solver.solve(updated, 1e7)
        cold = min(cold, time.perf_counter() - start)

        assert warm_result.allocations == cold_result.allocations

    assert cold / warm >= 3.0, (
        f"warm resolve speedup degraded: {cold / warm:.2f}x "
        f"(warm {warm * 1e3:.2f} ms, cold {cold * 1e3:.2f} ms)"
    )
