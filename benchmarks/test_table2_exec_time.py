"""Benchmark: regenerate Table II (application execution times)."""

from repro.experiments import table2_exec_time
from repro.experiments.paper_data import (
    TABLE2_CPUS_ONLY,
    TABLE2_GTX680_ONLY,
    TABLE2_HYBRID_FPM,
)


def test_table2_execution_times(benchmark, config):
    result = benchmark(table2_exec_time.run, config)
    print()
    print(table2_exec_time.format_result(result))

    # paper shape: GPU wins resident, loses past memory; hybrid wins all
    cpus40, gtx40, hyb40 = result.row(40)
    cpus70, gtx70, hyb70 = result.row(70)
    assert gtx40 < cpus40
    assert gtx70 > cpus70
    for n in result.sizes:
        assert result.row(n)[2] == min(result.row(n))

    for i, n in enumerate(result.sizes):
        benchmark.extra_info[f"cpus_{n}"] = round(result.cpus_only[i], 1)
        benchmark.extra_info[f"gtx680_{n}"] = round(result.gtx680_only[i], 1)
        benchmark.extra_info[f"hybrid_{n}"] = round(result.hybrid_fpm[i], 1)
    benchmark.extra_info["paper_cpus"] = TABLE2_CPUS_ONLY
    benchmark.extra_info["paper_gtx680"] = TABLE2_GTX680_ONLY
    benchmark.extra_info["paper_hybrid"] = TABLE2_HYBRID_FPM
