#!/usr/bin/env python3
"""FPMs are application-specific: balancing a Jacobi solver.

The same hybrid node, modelled for a memory-bound 5-point stencil instead
of GEMM, has completely different speed functions — and the identical FPM
partitioning machinery balances it.  This example contrasts the two
applications' balanced distributions, then verifies the stencil's strip
decomposition numerically against whole-grid sweeping.

Run:  python examples/jacobi_stencil.py
"""

import numpy as np

from repro import HybridMatMul, PartitioningStrategy, ig_icl_node
from repro.app.jacobi import (
    JacobiApp,
    reference_jacobi,
    run_partitioned_jacobi,
)
from repro.util.tables import render_table


def main() -> None:
    node = ig_icl_node()

    # --- GEMM distribution (the paper's application) -------------------
    gemm = HybridMatMul(node, seed=11, noise_sigma=0.02)
    gemm.build_models(max_blocks=4000.0)
    gemm_plan = gemm.plan(60, PartitioningStrategy.FPM)
    gemm_share = {
        u.name: a / 3600 for u, a in zip(gemm_plan.units, gemm_plan.unit_allocations)
    }

    # --- stencil distribution on the same node -------------------------
    jacobi = JacobiApp(node, width=16384, seed=11, noise_sigma=0.02)
    jacobi.build_models(max_rows=120_000.0)
    strip, result = jacobi.run(60_000, iterations=100, strategy="fpm")
    unit_names = list(jacobi.unit_kernels().keys())
    stencil_share = {
        n: r / 60_000 for n, r in zip(unit_names, strip.rows_per_unit)
    }

    rows = [
        [
            name,
            f"{100 * gemm_share.get(name, 0):.0f}%",
            f"{100 * stencil_share.get(name, 0):.0f}%",
        ]
        for name in unit_names
    ]
    print(
        render_table(
            ["unit", "GEMM share", "stencil share"],
            rows,
            title="Balanced workload shares depend on the application",
        )
    )
    print(
        "\nGEMM is compute-bound (GPUs tower over sockets); the stencil is "
        "bandwidth-bound\n(sockets hit the DRAM wall, GPUs pinned near "
        "device-memory capacity)."
    )
    print(
        f"\nstencil run: {result.total_time:.1f}s for 100 iterations, "
        f"computation imbalance {result.imbalance:.2f}"
    )

    # --- numeric verification of the strip decomposition ----------------
    plan_small = jacobi.plan(96, "fpm")
    rng = np.random.default_rng(0)
    grid = rng.standard_normal((96, 64))
    got = run_partitioned_jacobi(grid, plan_small, iterations=5)
    ref = reference_jacobi(grid, 5)
    print(
        f"\nnumeric check on a 96x64 grid, 5 sweeps: "
        f"max |partitioned - reference| = {np.max(np.abs(got - ref)):.2e}"
    )
    assert np.allclose(got, ref)


if __name__ == "__main__":
    main()
