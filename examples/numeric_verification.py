#!/usr/bin/env python3
"""Prove the partitioned algorithm numerically correct, end to end.

The simulator predicts *when* each process finishes; this example shows the
data layout and update schedule are *right*: it takes a real FPM plan,
shrinks the blocking factor so the matrices fit in RAM, executes the
column-based blocked multiplication with numpy — every rectangle owner
updating its piece from broadcast pivot panels — and compares with
``A @ B``.  It also reports the communication-volume advantage of the
column-based arrangement over a 1D striping (Section IV).

Run:  python examples/numeric_verification.py
"""

import numpy as np

from repro import HybridMatMul, PartitioningStrategy, ig_icl_node
from repro.app.verify import run_partitioned_matmul
from repro.core.comm_volume import (
    one_d_volume_blocks,
    per_iteration_volume_blocks,
)


def main() -> None:
    app = HybridMatMul(ig_icl_node(), seed=1, noise_sigma=0.01)
    app.build_models(max_blocks=600.0, cpu_points=6, gpu_points=8, adaptive=False)

    n = 16
    plan = app.plan(n, PartitioningStrategy.FPM)
    print(f"FPM plan for a {n}x{n}-block product over 24 processes")
    nonzero = sum(1 for a in plan.process_allocations if a > 0)
    print(f"  processes with work: {nonzero} / {len(plan.process_allocations)}")

    column = per_iteration_volume_blocks(plan.partition)
    striped = one_d_volume_blocks(list(plan.process_allocations), n)
    print(
        f"  per-iteration communication: column-based {column:.0f} blocks vs "
        f"1D striping {striped:.0f} blocks "
        f"({striped / column:.2f}x more for striping)"
    )

    block = 8  # tiny blocking factor: full matrices are (16*8)^2 = 128^2
    rng = np.random.default_rng(0)
    size = n * block
    a = rng.standard_normal((size, size))
    b = rng.standard_normal((size, size))
    print(f"\nexecuting the blocked algorithm numerically (b = {block})...")
    c = run_partitioned_matmul(a, b, plan.partition, block_size=block)
    reference = a @ b
    deviation = float(np.max(np.abs(c - reference)))
    print(f"  max |C - A@B| = {deviation:.2e}")
    assert np.allclose(c, reference), "partitioned product disagrees!"
    print("  partitioned result matches the numpy reference — layout correct.")


if __name__ == "__main__":
    main()
