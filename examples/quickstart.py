#!/usr/bin/env python3
"""Quickstart: balance a hybrid matrix multiplication with FPMs.

Reproduces the paper's core workflow on the simulated ``ig.icl.utk.edu``
node (Table I): build functional performance models for every compute unit
(two GPUs, four sockets), partition a 60x60-block matrix product, and
compare the three partitioning strategies of Section VI.

Run:  python examples/quickstart.py
"""

from repro import HybridMatMul, PartitioningStrategy, ig_icl_node
from repro.util.tables import render_table


def main() -> None:
    node = ig_icl_node()
    print(f"platform: {node.name} — {node.num_sockets} sockets x "
          f"{node.socket.cores} cores + {len(node.gpus)} GPUs")

    app = HybridMatMul(node, seed=42, noise_sigma=0.02)
    print("building functional performance models (one per compute unit)...")
    models = app.build_models(max_blocks=4000.0)
    for name, model in sorted(models.items()):
        print(
            f"  {name:18s} {len(model.speed_function):3d} samples, "
            f"{model.repetitions_total:4d} benchmark repetitions, "
            f"speed at 200 blocks: {model.speed(200):7.1f} GFlops"
        )

    n = 60
    rows = []
    for strategy in PartitioningStrategy:
        plan, result = app.run(n, strategy)
        allocations = {
            unit.name: alloc
            for unit, alloc in zip(plan.units, plan.unit_allocations)
        }
        rows.append(
            [
                strategy.value,
                allocations["GeForce GTX680"],
                allocations["Tesla C870"],
                result.total_time,
                result.computation_imbalance,
            ]
        )
    print()
    print(
        render_table(
            ["strategy", "GTX680 blocks", "C870 blocks", "total (s)", "imbalance"],
            rows,
            title=f"{n}x{n}-block matrix product on the hybrid node",
        )
    )
    print(
        "\nFPM-based partitioning tracks each device's speed *function* — "
        "including the GPU's out-of-core decline — so all processors "
        "finish together."
    )

    from repro.core.geometry import ascii_layout

    plan, _ = app.run(24, PartitioningStrategy.FPM)
    print("\nthe column-based arrangement (24x24 blocks, one symbol per rank;")
    print("rank 6 = GTX680's big rectangle, rank 0 = Tesla C870):\n")
    print(ascii_layout(plan.partition, cell_width=2))


if __name__ == "__main__":
    main()
