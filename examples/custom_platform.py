#!/usr/bin/env python3
"""FPM partitioning on a user-defined hybrid platform.

The library is not tied to the paper's node: describe any mix of sockets
and GPUs with :class:`repro.platform.spec.NodeSpec` and the whole stack —
measurement, modelling, partitioning, execution — works unchanged.  Here we
build a two-socket node with one mid-range GPU whose memory is tiny, so the
out-of-core crossover happens early, and watch the FPM partitioner shift
work back to the CPUs as the problem grows.

Run:  python examples/custom_platform.py
"""

from repro import HybridMatMul, PartitioningStrategy
from repro.platform.spec import (
    CpuSpec,
    GpuAttachment,
    GpuSpec,
    NodeSpec,
    SocketSpec,
)
from repro.util.tables import render_table


def small_gpu_node() -> NodeSpec:
    """Two quad-core sockets + one 512 MB GPU."""
    cpu = CpuSpec(name="Generic x86", clock_ghz=3.0, peak_gflops=15.0)
    socket = SocketSpec(cpu=cpu, cores=4, memory_gb=8.0, contention_alpha=0.05)
    gpu = GpuSpec(
        name="BudgetGPU",
        clock_mhz=800.0,
        cuda_cores=384,
        memory_mb=512.0,
        mem_bandwidth_gbs=80.0,
        peak_gflops=400.0,
        reserved_mb=64.0,
        pcie_contig_gbs=4.0,
        pcie_pitched_pinned_gbs=4.0,
        pcie_pageable_gbs=1.2,
        dma_engines=1,
    )
    return NodeSpec(
        name="custom-node",
        socket=socket,
        num_sockets=2,
        gpus=(GpuAttachment(gpu=gpu, socket_index=0),),
        block_size=640,
    )


def main() -> None:
    node = small_gpu_node()
    app = HybridMatMul(node, seed=5, noise_sigma=0.02)
    app.build_models(max_blocks=2600.0)

    gpu_unit = "BudgetGPU"
    limit = app.bench.gpu_kernel(0, 3).memory_limit_blocks
    print(f"{gpu_unit} device-memory limit: ~{limit:.0f} blocks\n")

    rows = []
    for n in (10, 20, 30, 40, 50):
        plan = app.plan(n, PartitioningStrategy.FPM)
        total = n * n
        gpu_share = plan.allocation_of(gpu_unit) / total
        result = app.execute(plan)
        rows.append(
            [
                f"{n}x{n}",
                total,
                plan.allocation_of(gpu_unit),
                f"{100 * gpu_share:.0f}%",
                result.total_time,
            ]
        )
    print(
        render_table(
            ["matrix", "blocks", "GPU blocks", "GPU share", "time (s)"],
            rows,
            title="FPM partitioning adapts as the GPU runs out of memory",
        )
    )
    print(
        "\nThe GPU's share shrinks once its allocation would exceed device "
        "memory — exactly the behaviour a constant model cannot express."
    )


if __name__ == "__main__":
    main()
