#!/usr/bin/env python3
"""Model quality: fitting families, cross-validation, and diagnostics.

Three questions a practitioner asks before trusting a model-based
partition, answered with library tools:

1. *Which model family does this device need?* — cross-validate constant /
   rational / log-polynomial / piecewise fits on the measured samples.
2. *Can I trust this partition?* — diagnose the operating points
   (extrapolation, steep segments, measurement precision).
3. *How do I retarget the simulator at other hardware?* — calibrate the
   device-spec parameters against target speed points.

Run:  python examples/model_quality.py
"""

from repro import HybridBenchmark, FpmBuilder, SizeGrid, ig_icl_node
from repro.core.diagnostics import diagnose_partition
from repro.core.fitting import STANDARD_FITTERS, best_fit, cross_validate
from repro.core.partition import partition_fpm
from repro.platform.calibration import CalibrationTarget, calibrate_gpu
from repro.platform.presets import geforce_gtx680
from repro.util.tables import render_table


def main() -> None:
    bench = HybridBenchmark(ig_icl_node(), seed=21, noise_sigma=0.02)
    builder = FpmBuilder(bench)

    # --- 1. model-family selection --------------------------------------
    gpu_model = builder.build(
        bench.gpu_kernel(1, 3), SizeGrid.geometric(16, 4000, 12), adaptive=True
    )
    cpu_model = builder.build(
        bench.socket_kernel(2, 6), SizeGrid.geometric(16, 2000, 10)
    )
    rows = []
    for name, samples in (
        ("GTX680 (cliff)", gpu_model.speed_function.samples),
        ("socket s6 (flat-ish)", cpu_model.speed_function.samples),
    ):
        scores = {
            fname: cross_validate(fitter, samples, fname).mean_relative_error
            for fname, fitter in STANDARD_FITTERS.items()
        }
        winner, _, _ = best_fit(samples)
        rows.append(
            [name]
            + [f"{100 * scores[f]:.1f}%" for f in STANDARD_FITTERS]
            + [winner]
        )
    print(
        render_table(
            ["device", *STANDARD_FITTERS.keys(), "winner"],
            rows,
            title="Leave-one-out error per model family",
        )
    )
    print(
        "The GPU's memory cliff defeats every smooth family — the "
        "piecewise FPM wins there,\nwhile the socket's flat curve is fine "
        "even as a constant.\n"
    )

    # --- 2. partition diagnostics ---------------------------------------
    models = [gpu_model, cpu_model]
    alloc = partition_fpm(models, 3000.0)
    diag = diagnose_partition(models, alloc)
    print(f"partition of 3000 blocks: {[round(a) for a in alloc]}")
    print(
        f"diagnostics: extrapolating={diag.extrapolating}, "
        f"steep points={diag.steep_operating_points}, "
        f"imbalance band ±{100 * diag.estimated_imbalance_band / 2:.1f}%, "
        f"trustworthy={diag.trustworthy}"
    )
    risky = partition_fpm(models, 60000.0)  # far beyond the sampled range
    risky_diag = diagnose_partition(models, risky)
    print(
        f"same models asked about 60000 blocks: "
        f"extrapolating={risky_diag.extrapolating} -> "
        f"trustworthy={risky_diag.trustworthy} (resample before using!)\n"
    )

    # --- 3. calibration ---------------------------------------------------
    # pretend these came from your own machine (here: a detuned GTX680)
    targets = [
        CalibrationTarget(200, 600.0),
        CalibrationTarget(900, 750.0),
        CalibrationTarget(1400, 380.0),
        CalibrationTarget(3000, 290.0),
    ]
    tuned, report = calibrate_gpu(geforce_gtx680(), targets)
    print(
        f"calibrated GPU spec to 4 target points: peak "
        f"{tuned.peak_gflops:.0f} GFlops, pageable "
        f"{tuned.pcie_pageable_gbs:.2f} GB/s — worst residual "
        f"{100 * report.worst_relative_error:.1f}% "
        f"({'acceptable' if report.acceptable() else 'needs more points'})"
    )


if __name__ == "__main__":
    main()
