#!/usr/bin/env python3
"""The measurement workflow: build, inspect, persist and reuse FPMs.

Functional performance models are expensive to build (each point is a
statistically reliable benchmark), so like the authors' fupermod tool the
library persists them as JSON.  This example:

1. builds the GTX680's speed functions for all three kernel versions with
   the repeat-until-reliable protocol (Section III);
2. prints the Figure-3-style series, showing the memory-limit cliff;
3. saves the version-3 model, reloads it, and partitions with it.

Run:  python examples/model_workflow.py
"""

import tempfile
from pathlib import Path

from repro import HybridBenchmark, FpmBuilder, SizeGrid, ig_icl_node
from repro import partition_fpm
from repro.core.serialization import load_models, save_models
from repro.util.tables import render_series

GTX680 = 1  # index in the preset node's attachment order


def main() -> None:
    bench = HybridBenchmark(ig_icl_node(), seed=7, noise_sigma=0.02)
    builder = FpmBuilder(bench)

    grid = SizeGrid.geometric(16.0, 4000.0, 12)
    models = {}
    for version in (1, 2, 3):
        kernel = bench.gpu_kernel(GTX680, version)
        models[version] = builder.build(
            kernel, grid, adaptive=True, name=f"GTX680-v{version}"
        )
        print(
            f"built v{version}: {len(models[version].speed_function)} samples "
            f"({models[version].repetitions_total} repetitions)"
        )

    sizes = [50, 200, 600, 1000, 1400, 2200, 3200, 4000]
    print()
    print(
        render_series(
            "blocks",
            sizes,
            {
                f"v{v} (GFlops)": [models[v].speed(x) for x in sizes]
                for v in (1, 2, 3)
            },
            title="GTX680 speed functions (cf. paper Fig. 3)",
            precision=1,
        )
    )
    limit = bench.gpu_kernel(GTX680, 3).memory_limit_blocks
    print(f"device-memory limit: ~{limit:.0f} blocks — note the v2 cliff past it")

    # persist and reuse
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "gtx680.json"
        save_models(path, [models[3]])
        (reloaded,) = load_models(path)
        print(f"\nmodel saved to JSON and reloaded: {reloaded.name}")

        # partition a 2500-block workload between the GPU and a plain
        # 100-GFlops processor using the reloaded model
        alloc = partition_fpm([reloaded, 100.0], 2500.0)
        print(
            f"FPM partition of 2500 blocks: GPU {alloc[0]:.0f}, "
            f"CPU {alloc[1]:.0f} "
            f"(ratio {alloc[0] / alloc[1]:.1f} — below the in-core ~9x "
            f"because 2500 blocks exceed device memory)"
        )


if __name__ == "__main__":
    main()
