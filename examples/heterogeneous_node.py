#!/usr/bin/env python3
"""A node with mixed sockets: per-socket specs through the whole stack.

Real upgrade cycles leave machines with mismatched sockets.  With
``NodeSpec.socket_overrides`` the simulator models that directly: here a
four-socket node keeps two of the paper's six-core Opterons, one older
4-core part at half the per-core speed, and one newer 8-core part — plus
the Tesla C870.  Binding, measurement, modelling and FPM partitioning all
pick the differences up automatically.

Run:  python examples/heterogeneous_node.py
"""

import dataclasses

from repro import HybridMatMul, PartitioningStrategy
from repro.core.geometry import ascii_layout
from repro.platform.presets import opteron_8439se, tesla_c870
from repro.platform.spec import GpuAttachment, NodeSpec, SocketSpec
from repro.util.tables import render_table


def mixed_node() -> NodeSpec:
    opteron = SocketSpec(cpu=opteron_8439se(), cores=6, memory_gb=16.0)
    old = SocketSpec(
        cpu=dataclasses.replace(
            opteron_8439se(), name="Old quad-core", peak_gflops=10.0
        ),
        cores=4,
        memory_gb=8.0,
        contention_alpha=0.06,
    )
    new = SocketSpec(
        cpu=dataclasses.replace(
            opteron_8439se(), name="New octo-core", peak_gflops=28.0
        ),
        cores=8,
        memory_gb=32.0,
        contention_alpha=0.03,
    )
    return NodeSpec(
        name="frankennode",
        socket=opteron,
        num_sockets=4,
        gpus=(GpuAttachment(tesla_c870(), 0),),
        socket_overrides=((2, old), (3, new)),
    )


def main() -> None:
    node = mixed_node()
    print(
        f"{node.name}: {node.total_cores} cores across "
        f"{node.num_sockets} heterogeneous sockets + {len(node.gpus)} GPU"
    )

    app = HybridMatMul(node, seed=31, noise_sigma=0.02)
    app.build_models(max_blocks=1300.0)

    n = 30
    plan, result = app.run(n, PartitioningStrategy.FPM)
    rows = []
    for unit, alloc in zip(plan.units, plan.unit_allocations):
        if unit.kind == "gpu":
            label = unit.name
        else:
            spec = node.socket_spec(unit.socket_index)
            label = f"{unit.name} ({spec.cpu.name})"
        rows.append([label, alloc, f"{100 * alloc / (n * n):.0f}%"])
    print()
    print(
        render_table(
            ["unit", "blocks", "share"],
            rows,
            title=f"FPM allocation of the {n}x{n}-block product",
        )
    )
    print(
        f"\ntotal {result.total_time:.1f}s, computation imbalance "
        f"{result.computation_imbalance:.2f}"
    )
    _, hom = app.run(n, PartitioningStrategy.HOMOGENEOUS)
    print(
        f"homogeneous split on the same node: {hom.total_time:.1f}s "
        f"({hom.total_time / result.total_time:.2f}x slower — the old "
        f"socket straggles)"
    )

    print("\nlayout (one symbol per rank; 0 = the C870's process):\n")
    print(ascii_layout(plan.partition, cell_width=2))


if __name__ == "__main__":
    main()
