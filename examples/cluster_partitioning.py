#!/usr/bin/env python3
"""Hierarchical FPM partitioning across a heterogeneous cluster.

The paper balances within one hybrid node; its companion work (reference
[6]) partitions *between* nodes using whole-node performance models.  The
library supports both levels: each node's aggregate speed function is
derived from its units' FPMs (the node, internally balanced, runs at
``x / T(x)``), and the cluster-level partitioner consumes those aggregates
like any other model.

This example builds a three-node cluster, prints the aggregate node speeds
at a few sizes, partitions 10000 blocks hierarchically, and shows that the
result coincides with flat partitioning over all twelve compute units.

Run:  python examples/cluster_partitioning.py
"""

from repro import HybridMatMul, ig_icl_node, cpu_only_node
from repro.core.hierarchical import (
    aggregate_speed_function,
    hierarchical_partition,
)
from repro.core.integer import makespan, round_partition
from repro.core.partition import partition_fpm
from repro.platform.presets import tesla_c870
from repro.platform.spec import GpuAttachment, NodeSpec
from repro.util.tables import render_series, render_table


def small_hybrid_node() -> NodeSpec:
    base = ig_icl_node()
    return NodeSpec(
        name="small-hybrid",
        socket=base.socket,
        num_sockets=1,
        gpus=(GpuAttachment(gpu=tesla_c870(), socket_index=0),),
    )


def unit_models(node, seed=3):
    app = HybridMatMul(node, seed=seed, noise_sigma=0.02)
    app.build_models(max_blocks=10_000.0, cpu_points=8, gpu_points=10,
                     adaptive=False)
    return app.models_for(app.compute_units())


def main() -> None:
    nodes = {
        "hybrid-A (2 GPUs + 22 cores)": unit_models(ig_icl_node()),
        "cpu-B (24 cores)": unit_models(cpu_only_node()),
        "small-C (1 socket + C870)": unit_models(small_hybrid_node()),
    }

    probe_sizes = [500.0, 2000.0, 8000.0]
    aggregates = {
        name: aggregate_speed_function(models, probe_sizes)
        for name, models in nodes.items()
    }
    print(
        render_series(
            "blocks",
            [int(x) for x in probe_sizes],
            {
                name: [agg.speed(x) for x in probe_sizes]
                for name, agg in aggregates.items()
            },
            title="Aggregate node speed functions (GFlops)",
            precision=0,
        )
    )

    total = 10_000
    hier = hierarchical_partition(list(nodes.values()), total)
    print()
    print(
        render_table(
            ["node", "blocks", "share"],
            [
                [name, alloc, f"{100 * alloc / total:.0f}%"]
                for name, alloc in zip(nodes, hier.node_allocations)
            ],
            title=f"Hierarchical partition of {total} blocks",
        )
    )

    flat_models = [m for models in nodes.values() for m in models]
    flat = round_partition(
        flat_models, partition_fpm(flat_models, float(total)), total
    )
    l1 = sum(abs(a - b) for a, b in zip(hier.flat, flat)) / total
    print(
        f"\nflat partitioning over all {len(flat_models)} units agrees within "
        f"{100 * l1:.2f}% (L1); makespans "
        f"{makespan(flat_models, hier.flat):.3f} vs "
        f"{makespan(flat_models, flat):.3f} — the hierarchy costs nothing "
        "but models only nodes at the top level."
    )


if __name__ == "__main__":
    main()
