#!/usr/bin/env python3
"""Inspect the out-of-core overlap pipeline (paper Fig. 4).

GPU kernel version 3 double-buffers tiles of ``C`` and overlaps uploads,
GEMMs and downloads across the device's DMA engines.  This example prints
the actual schedule the simulator builds — an ASCII Gantt chart per
resource — for both the dual-DMA GTX680 and the single-DMA Tesla C870,
making the paper's Fig. 4b concrete.

Run:  python examples/overlap_schedule.py
"""

from repro import HybridBenchmark, ig_icl_node
from repro.app.trace import ascii_gantt

C870, GTX680 = 0, 1


def show(bench: HybridBenchmark, gpu_index: int, area_blocks: float) -> None:
    kernel = bench.gpu_kernel(gpu_index, 3)
    name = bench.gpus[gpu_index].name
    sched = kernel.schedule(area_blocks)
    v2_time = bench.gpu_kernel(gpu_index, 2).run_time(area_blocks)
    print(f"{name}: {area_blocks:.0f} blocks (out-of-core)")
    print(ascii_gantt(sched.timeline))
    print(
        f"  serial (v2): {v2_time * 1e3:7.1f} ms   "
        f"overlapped (v3): {sched.makespan * 1e3:7.1f} ms   "
        f"gain: {v2_time / sched.makespan - 1:+.0%}"
    )
    print("  legend: u = upload (h2d), c = compute (kernel), d = download (d2h)\n")


def main() -> None:
    bench = HybridBenchmark(ig_icl_node(), seed=0, noise_sigma=0.0)
    limit_gtx = bench.gpu_kernel(GTX680, 3).memory_limit_blocks
    limit_c870 = bench.gpu_kernel(C870, 3).memory_limit_blocks

    print("=== GeForce GTX680: two DMA engines, copies both ways overlap ===")
    show(bench, GTX680, limit_gtx * 1.8)

    print("=== Tesla C870: one DMA engine, copies serialise (Fig. 4b) ===")
    show(bench, C870, limit_c870 * 1.8)


if __name__ == "__main__":
    main()
