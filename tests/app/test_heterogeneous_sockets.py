"""Heterogeneous-socket nodes through the whole pipeline.

A node mixing CPU generations (a slow 4-core socket alongside the fast
6-core Opterons) exercises the ``socket_overrides`` path: binding, device
construction, compute units, models and partitioning must all respect the
per-socket specs.
"""

import dataclasses

import pytest

from repro.app.matmul import HybridMatMul, PartitioningStrategy
from repro.measurement.binding import default_binding
from repro.platform.device import build_devices
from repro.platform.presets import opteron_8439se, tesla_c870
from repro.platform.spec import GpuAttachment, NodeSpec, SocketSpec


def slow_socket():
    """An older, slower 4-core socket."""
    cpu = dataclasses.replace(
        opteron_8439se(), name="Old Xeon", peak_gflops=9.0
    )
    return SocketSpec(cpu=cpu, cores=4, memory_gb=8.0, contention_alpha=0.06)


@pytest.fixture(scope="module")
def mixed_node():
    fast = SocketSpec(cpu=opteron_8439se(), cores=6, memory_gb=16.0)
    return NodeSpec(
        name="mixed",
        socket=fast,
        num_sockets=3,
        gpus=(GpuAttachment(tesla_c870(), 0),),
        socket_overrides=((2, slow_socket()),),
    )


class TestSpec:
    def test_socket_spec_lookup(self, mixed_node):
        assert mixed_node.socket_spec(0).cores == 6
        assert mixed_node.socket_spec(2).cores == 4
        assert mixed_node.heterogeneous_sockets

    def test_total_cores_counts_overrides(self, mixed_node):
        assert mixed_node.total_cores == 6 + 6 + 4

    def test_override_validation(self):
        fast = SocketSpec(cpu=opteron_8439se(), cores=6, memory_gb=16.0)
        with pytest.raises(ValueError, match="outside"):
            NodeSpec(
                name="bad",
                socket=fast,
                num_sockets=2,
                socket_overrides=((5, slow_socket()),),
            )
        with pytest.raises(ValueError, match="duplicate"):
            NodeSpec(
                name="bad",
                socket=fast,
                num_sockets=2,
                socket_overrides=((0, slow_socket()), (0, slow_socket())),
            )

    def test_gpu_capacity_check_uses_override(self):
        tiny = SocketSpec(cpu=opteron_8439se(), cores=1, memory_gb=4.0)
        fast = SocketSpec(cpu=opteron_8439se(), cores=6, memory_gb=16.0)
        with pytest.raises(ValueError, match="dedicated"):
            NodeSpec(
                name="bad",
                socket=fast,
                num_sockets=2,
                gpus=(GpuAttachment(tesla_c870(), 1),),
                socket_overrides=((1, tiny),),
            )


class TestDevicesAndBinding:
    def test_devices_use_per_socket_specs(self, mixed_node):
        sockets, _ = build_devices(mixed_node)
        assert sockets[0].spec.cores == 6
        assert sockets[2].spec.cores == 4
        assert sockets[2].spec.cpu.name == "Old Xeon"

    def test_binding_covers_all_cores(self, mixed_node):
        plan = default_binding(mixed_node)
        assert plan.num_processes == 16
        assert len(plan.cpu_ranks_on_socket(0)) == 5  # GPU takes one core
        assert len(plan.cpu_ranks_on_socket(2)) == 4

    def test_slow_socket_really_slower(self, mixed_node):
        sockets, _ = build_devices(mixed_node)
        fast = sockets[1].speed_gflops(400, 6)
        slow = sockets[2].speed_gflops(400, 4)
        assert slow < fast / 2


class TestPipeline:
    @pytest.fixture(scope="class")
    def app(self, mixed_node):
        app = HybridMatMul(mixed_node, seed=17, noise_sigma=0.01)
        app.build_models(
            max_blocks=1200.0, cpu_points=6, gpu_points=8, adaptive=False
        )
        return app

    def test_units_reflect_heterogeneity(self, app):
        units = {u.name: u for u in app.compute_units()}
        assert "socket0:c5" in units
        assert "socket1:c6" in units
        assert "socket2:c4" in units

    def test_fpm_gives_slow_socket_less(self, app):
        plan = app.plan(25, PartitioningStrategy.FPM)
        alloc = dict(zip((u.name for u in plan.units), plan.unit_allocations))
        assert alloc["socket2:c4"] < alloc["socket1:c6"] / 2

    def test_execution_balanced(self, app):
        plan, result = app.run(25, PartitioningStrategy.FPM)
        assert sum(plan.unit_allocations) == 625
        assert result.computation_imbalance < 1.6

    def test_beats_homogeneous(self, app):
        _, fpm = app.run(25, PartitioningStrategy.FPM)
        _, hom = app.run(25, PartitioningStrategy.HOMOGENEOUS)
        assert fpm.total_time < hom.total_time