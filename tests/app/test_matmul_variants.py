"""Robustness tests: non-standard node topologies through the full pipeline."""

import pytest

from repro.app.matmul import HybridMatMul, PartitioningStrategy
from repro.platform.presets import geforce_gtx680, opteron_8439se, tesla_c870
from repro.platform.spec import GpuAttachment, NodeSpec, SocketSpec


def socket(cores=6):
    return SocketSpec(cpu=opteron_8439se(), cores=cores, memory_gb=16.0)


@pytest.fixture(scope="module")
def two_gpus_one_socket_app():
    """Both GPUs on socket 0: 4 CPU cores there, two dedicated."""
    node = NodeSpec(
        name="stacked",
        socket=socket(),
        num_sockets=2,
        gpus=(
            GpuAttachment(tesla_c870(), 0),
            GpuAttachment(geforce_gtx680(), 0),
        ),
    )
    app = HybridMatMul(node, seed=9, noise_sigma=0.01)
    app.build_models(max_blocks=2000.0, cpu_points=6, gpu_points=8, adaptive=False)
    return app


class TestTwoGpusOneSocket:
    def test_units(self, two_gpus_one_socket_app):
        units = two_gpus_one_socket_app.compute_units()
        names = [u.name for u in units]
        assert "socket0:c4" in names  # 6 cores - 2 dedicated
        assert "socket1:c6" in names
        assert len(units) == 4

    def test_binding(self, two_gpus_one_socket_app):
        plan = two_gpus_one_socket_app.binding
        assert plan.dedicated_ranks() == [0, 1]
        assert len(plan.cpu_ranks_on_socket(0)) == 4

    def test_plan_and_execute(self, two_gpus_one_socket_app):
        plan, result = two_gpus_one_socket_app.run(
            30, PartitioningStrategy.FPM
        )
        assert sum(plan.unit_allocations) == 900
        plan.partition.validate_tiling()
        assert result.total_time > 0

    def test_both_dedicated_processes_feel_contention(
        self, two_gpus_one_socket_app
    ):
        processes = two_gpus_one_socket_app.processes()
        dedicated = [p for p in processes if p.is_dedicated]
        assert all(p.busy_cpu_cores == 4 for p in dedicated)


class TestSingleSocketNoGpu:
    def test_minimal_node_runs(self):
        node = NodeSpec(name="mini", socket=socket(4), num_sockets=1)
        app = HybridMatMul(node, seed=2, noise_sigma=0.0)
        app.build_models(
            max_blocks=500.0, cpu_points=5, gpu_points=5, adaptive=False
        )
        plan, result = app.run(10, PartitioningStrategy.FPM)
        assert sum(plan.unit_allocations) == 100
        # one homogeneous unit: FPM == homogeneous
        _, hom = app.run(10, PartitioningStrategy.HOMOGENEOUS)
        assert result.total_time == pytest.approx(hom.total_time, rel=0.02)


class TestOddCoreCounts:
    def test_three_core_sockets(self):
        node = NodeSpec(
            name="odd",
            socket=socket(3),
            num_sockets=3,
            gpus=(GpuAttachment(tesla_c870(), 1),),
        )
        app = HybridMatMul(node, seed=4, noise_sigma=0.01)
        app.build_models(
            max_blocks=800.0, cpu_points=6, gpu_points=7, adaptive=False
        )
        plan, result = app.run(16, PartitioningStrategy.FPM)
        assert sum(plan.process_allocations) == 256
        # socket 1 has only 2 CPU processes
        units = {u.name: u for u in plan.units}
        assert len(units["socket1:c2"].member_ranks) == 2
        assert result.computation_imbalance < 2.0
