"""End-to-end pipeline with bounded (in-core-only) GPU models.

The paper notes that without out-of-core kernels the GPU's FPM "can be
defined only for the range of problem sizes that fit the local memory".
These tests run the full application pipeline in that regime: the bounded
models cap the GPUs at their capacities and the partitioner routes the
overflow to the sockets.
"""

import pytest

from repro.app.matmul import HybridMatMul, PartitioningStrategy
from repro.kernels.gemm_gpu import InCoreGpuGemmKernel
from repro.measurement.fpm_builder import FpmBuilder, SizeGrid


@pytest.fixture(scope="module")
def bounded_app(node):
    app = HybridMatMul(node, seed=13, noise_sigma=0.01)
    builder = FpmBuilder(app.bench)
    models = {}
    for unit in app.compute_units():
        if unit.kind == "gpu":
            kernel = InCoreGpuGemmKernel(gpu=app.bench.gpus[unit.gpu_index])
            grid = SizeGrid.geometric(8.0, 5000.0, 10)
        else:
            gpu_here = bool(node.gpus_on_socket(unit.socket_index))
            kernel = app.bench.socket_kernel(
                unit.socket_index, len(unit.member_ranks), gpu_active=gpu_here
            )
            grid = SizeGrid.geometric(8.0, 3000.0, 8)
        models[unit.name] = builder.build(kernel, grid, name=unit.name).repaired()
    app.set_models(models)
    return app


class TestBoundedPipeline:
    def test_models_are_bounded(self, bounded_app):
        gtx = bounded_app._models["GeForce GTX680"]
        c870 = bounded_app._models["Tesla C870"]
        assert gtx.bounded and c870.bounded
        assert gtx.max_size < 1300
        assert c870.max_size < 800

    def test_gpu_allocations_capped(self, bounded_app):
        """At 60x60 both GPUs are pinned at their memory capacities."""
        plan = bounded_app.plan(60, PartitioningStrategy.FPM)
        gtx_cap = bounded_app._models["GeForce GTX680"].max_size
        c870_cap = bounded_app._models["Tesla C870"].max_size
        assert plan.allocation_of("GeForce GTX680") <= gtx_cap + 1
        assert plan.allocation_of("Tesla C870") <= c870_cap + 1
        assert sum(plan.unit_allocations) == 3600

    def test_sockets_absorb_overflow(self, bounded_app):
        small = bounded_app.plan(40, PartitioningStrategy.FPM)
        large = bounded_app.plan(70, PartitioningStrategy.FPM)

        def socket_share(plan):
            return sum(
                a
                for u, a in zip(plan.units, plan.unit_allocations)
                if u.kind == "socket"
            ) / (plan.n * plan.n)

        assert socket_share(large) > socket_share(small)

    def test_in_range_sizes_match_unbounded_plan(self, bounded_app, node):
        """While everything fits, bounded and unbounded models agree."""
        unbounded = HybridMatMul(node, seed=13, noise_sigma=0.01)
        unbounded.build_models(
            max_blocks=2500.0, cpu_points=8, gpu_points=10, adaptive=False
        )
        a = bounded_app.plan(30, PartitioningStrategy.FPM)
        b = unbounded.plan(30, PartitioningStrategy.FPM)
        for x, y in zip(a.unit_allocations, b.unit_allocations):
            assert abs(x - y) <= max(20, 0.1 * max(x, y))

    def test_execution_works(self, bounded_app):
        plan = bounded_app.plan(50, PartitioningStrategy.FPM)
        result = bounded_app.execute(plan)
        assert result.total_time > 0
        plan.partition.validate_tiling()

    def test_infeasible_problem_raises(self, bounded_app, node):
        """A problem too large even for sockets+GPUs... cannot happen here
        (sockets are unbounded), but a pure-bounded model set must raise."""
        from repro.core.partition import partition_fpm

        gtx = bounded_app._models["GeForce GTX680"]
        c870 = bounded_app._models["Tesla C870"]
        with pytest.raises(ValueError, match="capacity"):
            partition_fpm([gtx, c870], 10_000.0)
