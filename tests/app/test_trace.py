"""Unit tests for the application execution trace."""

import pytest

from repro.app.execution import simulate_execution
from repro.app.trace import ascii_gantt, trace_execution
from repro.core.geometry import column_based_partition
from repro.measurement.binding import default_binding
from repro.runtime.mpi_sim import SimulatedComm
from repro.runtime.process import bind_processes


@pytest.fixture()
def setup(node, devices):
    sockets, gpus = devices
    processes = bind_processes(default_binding(node), sockets, gpus)
    comm = SimulatedComm(node.total_cores)
    total = 144
    base, extra = divmod(total, len(processes))
    allocs = [base + (1 if r < extra else 0) for r in range(len(processes))]
    partition = column_based_partition(allocs, 12)
    return processes, partition, comm


class TestTraceExecution:
    def test_makespan_matches_simulator(self, setup, node):
        processes, partition, comm = setup
        trace = trace_execution(processes, partition, comm, node.block_size)
        result = simulate_execution(processes, partition, comm, node.block_size)
        assert trace.makespan == pytest.approx(result.total_time, rel=1e-9)

    def test_truncation(self, setup, node):
        processes, partition, comm = setup
        short = trace_execution(
            processes, partition, comm, node.block_size, max_iterations=3
        )
        full = trace_execution(processes, partition, comm, node.block_size)
        assert short.makespan == pytest.approx(full.makespan * 3 / 12, rel=1e-9)

    def test_no_double_booking(self, setup, node):
        processes, partition, comm = setup
        trace = trace_execution(processes, partition, comm, node.block_size)
        trace.timeline.validate()

    def test_idle_fraction_reflects_imbalance(self, setup, node):
        """Homogeneous distribution: GPU ranks idle most (they are fast)."""
        processes, partition, comm = setup
        trace = trace_execution(processes, partition, comm, node.block_size)
        gpu_idle = trace.idle_fraction(6)  # GTX680's dedicated rank
        cpu_idle = trace.idle_fraction(12)  # a plain core on socket 2
        assert gpu_idle > cpu_idle
        assert 0 <= cpu_idle < 0.3
        assert trace.mean_idle_fraction() > 0

    def test_every_working_rank_present(self, setup, node):
        processes, partition, comm = setup
        trace = trace_execution(
            processes, partition, comm, node.block_size, max_iterations=1
        )
        ranks = {
            r for r in trace.timeline.resources() if r.startswith("rank")
        }
        assert len(ranks) == 24


class TestAsciiGantt:
    def test_renders_rows(self, setup, node):
        processes, partition, comm = setup
        trace = trace_execution(
            processes, partition, comm, node.block_size, max_iterations=2
        )
        art = ascii_gantt(trace.timeline, width=40)
        lines = art.splitlines()
        assert len(lines) == len(trace.timeline.resources())
        assert all("|" in line for line in lines)

    def test_empty_timeline(self):
        from repro.util.timeline import Timeline

        assert "empty" in ascii_gantt(Timeline())
