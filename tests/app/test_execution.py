"""Unit tests for the application execution simulator."""

import pytest

from repro.app.execution import simulate_execution, simulate_execution_events
from repro.core.geometry import column_based_partition
from repro.measurement.binding import default_binding
from repro.runtime.mpi_sim import CommModel, SimulatedComm
from repro.runtime.process import bind_processes


@pytest.fixture()
def processes(node, devices):
    sockets, gpus = devices
    return bind_processes(default_binding(node), sockets, gpus)


@pytest.fixture()
def comm(node):
    return SimulatedComm(node.total_cores, CommModel())


def even_partition(n, p):
    total = n * n
    base, extra = divmod(total, p)
    allocs = [base + (1 if r < extra else 0) for r in range(p)]
    return column_based_partition(allocs, n)


class TestSimulateExecution:
    def test_total_is_iterations_times_iteration(self, processes, comm, node):
        part = even_partition(12, len(processes))
        res = simulate_execution(processes, part, comm, node.block_size)
        assert res.total_time == pytest.approx(12 * res.iteration_time)

    def test_computation_time_per_process(self, processes, comm, node):
        part = even_partition(12, len(processes))
        res = simulate_execution(processes, part, comm, node.block_size)
        by_rank = {p.rank: p for p in processes}
        for rank, t in enumerate(res.computation_time):
            area = res.areas[rank]
            assert t == pytest.approx(12 * by_rank[rank].iteration_time(area))

    def test_areas_match_partition(self, processes, comm, node):
        part = even_partition(12, len(processes))
        res = simulate_execution(processes, part, comm, node.block_size)
        assert list(res.areas) == part.realized_allocations(len(processes))

    def test_communication_positive(self, processes, comm, node):
        part = even_partition(12, len(processes))
        res = simulate_execution(processes, part, comm, node.block_size)
        assert res.communication_time > 0
        assert res.total_time > res.makespan_computation

    def test_even_distribution_straggles_on_gpu_sockets(
        self, processes, comm, node
    ):
        """Homogeneous distribution leaves GPUs underused: CPU processes
        dominate the iteration (the premise of Fig. 7)."""
        part = even_partition(24, len(processes))
        res = simulate_execution(processes, part, comm, node.block_size)
        dedicated = {0, 6}
        cpu_times = [
            t
            for r, t in enumerate(res.computation_time)
            if r not in dedicated
        ]
        gpu_times = [res.computation_time[0], res.computation_time[6]]
        assert max(gpu_times) < min(cpu_times)

    def test_imbalance_metric(self, processes, comm, node):
        part = even_partition(24, len(processes))
        res = simulate_execution(processes, part, comm, node.block_size)
        assert res.computation_imbalance > 1.0

    def test_rejects_partition_without_processes(self, processes, comm, node):
        part = even_partition(12, 30)  # 30 owners > 24 processes
        with pytest.raises(ValueError, match="without processes"):
            simulate_execution(processes, part, comm, node.block_size)


class TestSimulateExecutionEvents:
    def test_engines_bit_identical(self, processes, comm, node):
        part = even_partition(12, len(processes))
        vec = simulate_execution_events(
            processes, part, comm, node.block_size, engine="vector"
        )
        sca = simulate_execution_events(
            processes, part, comm, node.block_size, engine="scalar"
        )
        assert vec.total_time == sca.total_time
        assert vec.computation_time == sca.computation_time
        assert vec.communication_time == sca.communication_time
        assert vec.iteration_time == sca.iteration_time

    def test_matches_analytic_path(self, processes, comm, node):
        part = even_partition(12, len(processes))
        analytic = simulate_execution(processes, part, comm, node.block_size)
        events = simulate_execution_events(
            processes, part, comm, node.block_size
        )
        assert events.total_time == pytest.approx(analytic.total_time)
        assert events.iteration_time == pytest.approx(analytic.iteration_time)
        assert events.communication_time == pytest.approx(
            analytic.communication_time
        )
        for got, want in zip(events.computation_time, analytic.computation_time):
            assert got == pytest.approx(want)
        assert events.areas == analytic.areas

    def test_panel_count_override(self, processes, comm, node):
        part = even_partition(12, len(processes))
        short = simulate_execution_events(
            processes, part, comm, node.block_size, panels=3
        )
        assert short.total_time == pytest.approx(3 * short.iteration_time)

    def test_rejects_partition_without_processes(self, processes, comm, node):
        part = even_partition(12, 30)
        with pytest.raises(ValueError, match="without processes"):
            simulate_execution_events(processes, part, comm, node.block_size)
