"""Integration tests for the full application pipeline."""

import pytest

from repro.app.matmul import HybridMatMul, PartitioningStrategy
from repro.app.verify import verify_partition_numerically
from repro.core.serialization import load_models, save_models


@pytest.fixture(scope="module")
def app(node):
    app = HybridMatMul(node, seed=11, noise_sigma=0.01)
    app.build_models(max_blocks=5200.0, cpu_points=8, gpu_points=10, adaptive=False)
    return app


class TestComputeUnits:
    def test_paper_unit_set(self, app):
        units = app.compute_units()
        kinds = [u.kind for u in units]
        assert kinds.count("gpu") == 2
        assert kinds.count("socket") == 4
        socket_sizes = sorted(
            len(u.member_ranks) for u in units if u.kind == "socket"
        )
        assert socket_sizes == [5, 5, 6, 6]  # 2 x S5, 2 x S6

    def test_units_cover_all_ranks(self, app):
        ranks = [r for u in app.compute_units() for r in u.member_ranks]
        assert sorted(ranks) == list(range(24))


class TestPlan:
    def test_fpm_plan_sums(self, app):
        plan = app.plan(40, PartitioningStrategy.FPM)
        assert sum(plan.unit_allocations) == 1600
        assert sum(plan.process_allocations) == 1600
        plan.partition.validate_tiling()

    def test_fpm_favours_gtx680(self, app):
        plan = app.plan(40, PartitioningStrategy.FPM)
        g1 = plan.allocation_of("GeForce GTX680")
        others = [
            a
            for u, a in zip(plan.units, plan.unit_allocations)
            if u.name != "GeForce GTX680"
        ]
        assert g1 > max(others)

    def test_cpm_overloads_gpu_at_scale(self, app):
        """Table III: CPM's G1 share exceeds FPM's for n >= 50."""
        for n in (50, 60, 70):
            cpm = app.plan(n, PartitioningStrategy.CPM)
            fpm = app.plan(n, PartitioningStrategy.FPM)
            assert cpm.allocation_of("GeForce GTX680") > fpm.allocation_of(
                "GeForce GTX680"
            )

    def test_homogeneous_plan_even(self, app):
        plan = app.plan(24, PartitioningStrategy.HOMOGENEOUS)
        assert set(plan.process_allocations) == {24}

    def test_socket_share_split_evenly(self, app):
        plan = app.plan(60, PartitioningStrategy.FPM)
        for unit, alloc in zip(plan.units, plan.unit_allocations):
            if unit.kind == "socket":
                member_allocs = [
                    plan.process_allocations[r] for r in unit.member_ranks
                ]
                assert max(member_allocs) - min(member_allocs) <= 1
                assert sum(member_allocs) == alloc

    def test_strategy_accepts_strings(self, app):
        plan = app.plan(20, "fpm")
        assert plan.strategy is PartitioningStrategy.FPM

    def test_unknown_strategy_rejected(self, app):
        with pytest.raises(ValueError):
            app.plan(20, "magic")

    def test_models_required(self, node):
        bare = HybridMatMul(node, seed=1)
        with pytest.raises(ValueError, match="no models"):
            bare.plan(20, PartitioningStrategy.FPM)


class TestExecute:
    def test_fpm_beats_alternatives_at_scale(self, app):
        _, fpm = app.run(60, PartitioningStrategy.FPM)
        _, cpm = app.run(60, PartitioningStrategy.CPM)
        _, hom = app.run(60, PartitioningStrategy.HOMOGENEOUS)
        assert fpm.total_time < cpm.total_time < hom.total_time

    def test_fpm_flattens_computation(self, app):
        _, fpm = app.run(60, PartitioningStrategy.FPM)
        _, cpm = app.run(60, PartitioningStrategy.CPM)
        assert fpm.computation_imbalance < cpm.computation_imbalance

    def test_fpm_plan_is_numerically_correct(self, app):
        """The planned geometry really computes C = A @ B."""
        plan = app.plan(12, PartitioningStrategy.FPM)
        verify_partition_numerically(plan.partition, block_size=3, seed=0)


class TestExecuteEvents:
    def test_engines_bit_identical(self, app):
        plan = app.plan(24, PartitioningStrategy.FPM)
        vec = app.execute_events(plan, panels=6, engine="vector")
        sca = app.execute_events(plan, panels=6, engine="scalar")
        assert vec.total_time == sca.total_time
        assert vec.computation_time == sca.computation_time
        assert vec.communication_time == sca.communication_time

    def test_matches_analytic_execute(self, app):
        plan = app.plan(24, PartitioningStrategy.FPM)
        analytic = app.execute(plan)
        events = app.execute_events(plan)
        assert events.n == analytic.n
        assert events.areas == analytic.areas
        assert events.total_time == pytest.approx(analytic.total_time)
        assert events.iteration_time == pytest.approx(analytic.iteration_time)
        assert events.communication_time == pytest.approx(
            analytic.communication_time
        )


class TestModelPersistence:
    def test_models_round_trip_through_json(self, app, node, tmp_path):
        path = tmp_path / "models.json"
        units = app.compute_units()
        save_models(path, app.models_for(units))
        fresh = HybridMatMul(node, seed=11, noise_sigma=0.01)
        fresh.set_models({m.name: m for m in load_models(path)})
        a = app.plan(60, PartitioningStrategy.FPM)
        b = fresh.plan(60, PartitioningStrategy.FPM)
        assert a.unit_allocations == b.unit_allocations
