"""Unit and integration tests for the Jacobi application."""

import numpy as np
import pytest

from repro.app.jacobi import (
    JacobiApp,
    StripPartition,
    reference_jacobi,
    run_partitioned_jacobi,
)
from repro.platform.presets import ig_icl_node


@pytest.fixture(scope="module")
def app():
    app = JacobiApp(ig_icl_node(), width=16384, seed=3, noise_sigma=0.01)
    app.build_models(max_rows=120_000.0, points=10)
    return app


class TestStripPartition:
    def test_bounds(self):
        p = StripPartition(total_rows=10, rows_per_unit=(4, 0, 6))
        assert p.bounds() == [(0, 4), (4, 4), (4, 10)]

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError, match="cover"):
            StripPartition(total_rows=10, rows_per_unit=(4, 4))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            StripPartition(total_rows=4, rows_per_unit=(5, -1))


class TestNumericCorrectness:
    def test_partitioned_equals_reference(self):
        rng = np.random.default_rng(1)
        grid = rng.standard_normal((60, 40))
        part = StripPartition(total_rows=60, rows_per_unit=(25, 18, 17))
        got = run_partitioned_jacobi(grid, part, iterations=7)
        ref = reference_jacobi(grid, 7)
        np.testing.assert_allclose(got, ref, rtol=0, atol=1e-12)

    def test_single_strip(self):
        rng = np.random.default_rng(2)
        grid = rng.standard_normal((20, 10))
        part = StripPartition(total_rows=20, rows_per_unit=(20,))
        got = run_partitioned_jacobi(grid, part, iterations=3)
        np.testing.assert_allclose(got, reference_jacobi(grid, 3))

    def test_empty_strips_allowed(self):
        rng = np.random.default_rng(3)
        grid = rng.standard_normal((30, 8))
        part = StripPartition(total_rows=30, rows_per_unit=(15, 0, 15))
        got = run_partitioned_jacobi(grid, part, iterations=4)
        np.testing.assert_allclose(got, reference_jacobi(grid, 4))

    def test_fpm_plan_is_numerically_correct(self, app):
        """The real planned strips compute the right answer."""
        plan = app.plan(96, "fpm")
        rng = np.random.default_rng(4)
        grid = rng.standard_normal((96, 32))
        got = run_partitioned_jacobi(grid, plan, iterations=3)
        np.testing.assert_allclose(got, reference_jacobi(grid, 3))


class TestPlanning:
    def test_fpm_pins_gpus_near_capacity(self, app):
        plan = app.plan(60_000, "fpm")
        alloc = dict(zip(app.unit_kernels().keys(), plan.rows_per_unit))
        gtx_cap = app.unit_kernels()["GeForce GTX680"].resident_capacity_rows
        assert 0.9 * gtx_cap <= alloc["GeForce GTX680"] <= 1.25 * gtx_cap

    def test_sockets_nearly_equal(self, app):
        """Bandwidth-bound stencil: S5 and S6 sockets get ~equal shares."""
        plan = app.plan(60_000, "fpm")
        alloc = dict(zip(app.unit_kernels().keys(), plan.rows_per_unit))
        s5 = alloc["socket0:c5"]
        s6 = alloc["socket2:c6"]
        assert abs(s5 - s6) / s6 < 0.1

    def test_unknown_strategy(self, app):
        with pytest.raises(ValueError):
            app.plan(100, "magic")

    def test_requires_models(self):
        bare = JacobiApp(ig_icl_node(), width=1024, seed=1)
        with pytest.raises(ValueError, match="no stencil models"):
            bare.plan(100, "fpm")


class TestExecution:
    def test_fpm_beats_homogeneous_and_cpm(self, app):
        _, fpm = app.run(60_000, 50, "fpm")
        _, cpm = app.run(60_000, 50, "cpm")
        _, hom = app.run(60_000, 50, "homogeneous")
        assert fpm.total_time < hom.total_time < cpm.total_time

    def test_fpm_nearly_balanced(self, app):
        _, res = app.run(60_000, 50, "fpm")
        assert res.imbalance < 1.3

    def test_total_scales_with_iterations(self, app):
        part = app.plan(30_000, "fpm")
        r10 = app.execute(part, 10)
        r20 = app.execute(part, 20)
        assert r20.total_time == pytest.approx(2 * r10.total_time)

    def test_halo_time_positive(self, app):
        _, res = app.run(30_000, 10, "fpm")
        assert res.halo_time > 0


class TestExecuteEvents:
    def test_engines_bit_identical(self, app):
        part = app.plan(30_000, "fpm")
        vec = app.execute_events(part, 10, engine="vector")
        sca = app.execute_events(part, 10, engine="scalar")
        assert vec.total_time == sca.total_time
        assert vec.sweep_time_per_unit == sca.sweep_time_per_unit
        assert vec.halo_time == sca.halo_time

    def test_matches_analytic_execute(self, app):
        part = app.plan(30_000, "fpm")
        analytic = app.execute(part, 10)
        events = app.execute_events(part, 10)
        assert events.iterations == analytic.iterations
        assert events.total_time == pytest.approx(analytic.total_time)
        assert events.halo_time == pytest.approx(analytic.halo_time)
        for got, want in zip(
            events.sweep_time_per_unit, analytic.sweep_time_per_unit
        ):
            assert got == pytest.approx(want)

    def test_rejects_mismatched_partition(self, app):
        bad = StripPartition(total_rows=10, rows_per_unit=(5, 5))
        with pytest.raises(ValueError, match="strips"):
            app.execute_events(bad, 3)
