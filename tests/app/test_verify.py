"""Numeric correctness of the partitioned multiplication."""

import numpy as np
import pytest

from repro.app.verify import run_partitioned_matmul, verify_partition_numerically
from repro.core.geometry import column_based_partition


class TestRunPartitionedMatmul:
    def test_single_owner_equals_reference(self):
        p = column_based_partition([16], 4)
        rng = np.random.default_rng(1)
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        c = run_partitioned_matmul(a, b, p, block_size=4)
        np.testing.assert_allclose(c, a @ b, rtol=1e-10, atol=1e-10)

    def test_heterogeneous_partition_equals_reference(self):
        allocs = [20, 20, 14, 8, 2]
        p = column_based_partition(allocs, 8)
        rng = np.random.default_rng(2)
        a = rng.standard_normal((40, 40))
        b = rng.standard_normal((40, 40))
        c = run_partitioned_matmul(a, b, p, block_size=5)
        np.testing.assert_allclose(c, a @ b, rtol=1e-9, atol=1e-9)

    def test_shape_validation(self):
        p = column_based_partition([16], 4)
        with pytest.raises(ValueError, match="matrices must be"):
            run_partitioned_matmul(
                np.zeros((3, 3)), np.zeros((3, 3)), p, block_size=4
            )


class TestVerifyHelper:
    def test_passes_for_valid_partition(self):
        p = column_based_partition([30, 30, 20, 20], 10)
        deviation = verify_partition_numerically(p, block_size=4, seed=3)
        assert deviation < 1e-6

    def test_many_processors(self):
        """A 24-process arrangement like the paper's, numerically exact."""
        allocs = [40, 10] + [2] * 22 + [6]
        n = 10
        assert sum(allocs) == n * n
        p = column_based_partition(allocs, n)
        verify_partition_numerically(p, block_size=3, seed=4)

    def test_zero_allocations_ignored(self):
        p = column_based_partition([100, 0], 10)
        verify_partition_numerically(p, block_size=2, seed=5)
