"""Unit tests for blocked-matrix bookkeeping."""

import numpy as np
import pytest

from repro.app.blocking import BlockGrid
from repro.core.geometry import Rectangle


@pytest.fixture()
def grid():
    return BlockGrid(n=4, block_size=3)


@pytest.fixture()
def matrix(grid):
    return np.arange(grid.elements**2, dtype=float).reshape(
        grid.elements, grid.elements
    )


class TestBlockGrid:
    def test_elements(self, grid):
        assert grid.elements == 12

    def test_block_slice(self, grid):
        s = grid.block_slice(1, 2)
        assert (s.start, s.stop) == (3, 9)

    def test_block_slice_bounds(self, grid):
        with pytest.raises(ValueError):
            grid.block_slice(3, 2)

    def test_rectangle_view_is_view(self, grid, matrix):
        rect = Rectangle(owner=0, col=1, row=2, width=2, height=1)
        view = grid.rectangle_view(matrix, rect)
        assert view.shape == (3, 6)
        view[:] = -1
        assert (matrix[6:9, 3:9] == -1).all()

    def test_pivot_column_panel(self, grid, matrix):
        rect = Rectangle(owner=0, col=1, row=2, width=2, height=1)
        panel = grid.pivot_column_panel(matrix, 3, rect)
        assert panel.shape == (3, 3)
        np.testing.assert_array_equal(panel, matrix[6:9, 9:12])

    def test_pivot_row_panel(self, grid, matrix):
        rect = Rectangle(owner=0, col=1, row=2, width=2, height=1)
        panel = grid.pivot_row_panel(matrix, 0, rect)
        assert panel.shape == (3, 6)
        np.testing.assert_array_equal(panel, matrix[0:3, 3:9])

    def test_shape_validation(self, grid):
        with pytest.raises(ValueError, match="shape"):
            grid.rectangle_view(np.zeros((5, 5)), Rectangle(0, 0, 0, 1, 1))

    def test_iteration_validation(self, grid, matrix):
        rect = Rectangle(0, 0, 0, 1, 1)
        with pytest.raises(ValueError, match="iteration"):
            grid.pivot_column_panel(matrix, 4, rect)
