"""Unit tests for the CLI entry point."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.seed == 42
        assert args.fast is False
        assert args.gpu_version == 3
        assert args.faults is None
        assert args.timeout is None

    def test_faults_spec_accepted(self):
        args = build_parser().parse_args(["report", "--faults", "fail:*:p=0.5"])
        assert args.faults == "fail:*:p=0.5"


class TestMain:
    def test_fig2_runs(self, capsys):
        assert main(["fig2", "--fast", "--noise", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "s6" in out

    def test_table3_runs(self, capsys):
        assert main(["table3", "--fast", "--noise", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "FPM" in out

    def test_seed_changes_output(self, capsys):
        main(["fig2", "--fast", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig2", "--fast", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_plot_flag(self, capsys):
        assert main(["fig2", "--fast", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "o = s5" in out  # the ASCII chart legend

    def test_plot_flag_without_plotter(self, capsys):
        assert main(["table3", "--fast", "--plot"]) == 0
        assert "no plot defined" in capsys.readouterr().out

    def test_report_degrades_under_total_faults(self, capsys):
        """The acceptance criterion: a report with forced failures still
        exits 0, rendering every section as [FAILED ...] instead of dying."""
        code = main(
            ["report", "--fast", "--no-cache", "--faults", "fail:*:p=1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("[FAILED") == 7
        assert "injected kernel failure" in out
        assert "Shape checks skipped: 7 experiment(s) failed" in out

    def test_bad_faults_spec_fails_fast(self):
        with pytest.raises(ValueError, match="bad fault clause"):
            main(["fig2", "--fast", "--faults", "bogus"])

    def test_export_json(self, capsys, tmp_path):
        path = tmp_path / "fig2.json"
        assert main(["fig2", "--fast", "--export-json", str(path)]) == 0
        assert path.exists()
        import json

        payload = json.loads(path.read_text())
        assert "s6" in payload

    def test_ablations_command_runs_every_study(self, capsys):
        from repro.experiments import ablations

        assert main(["ablations", "--fast", "--noise", "0.01"]) == 0
        out = capsys.readouterr().out
        for name in ablations.__all__:
            assert f"=== {name} " in out

    def test_models_command(self, capsys, tmp_path):
        from repro.core.serialization import load_models

        path = tmp_path / "models.json"
        assert main(
            ["models", "--fast", "--max-blocks", "800", "--out", str(path)]
        ) == 0
        assert "saved to" in capsys.readouterr().out
        models = load_models(path)
        assert len(models) == 6
        names = {m.name for m in models}
        assert "GeForce GTX680" in names
