"""Unit and property tests for the out-of-core tiling planner (Fig. 4a)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.outofcore import (
    Tile,
    near_square_shape,
    plan_tiling,
)


class TestTile:
    def test_alignment_detection(self):
        assert Tile(64, 128, alignment=32).aligned
        assert not Tile(65, 128, alignment=32).aligned

    def test_area_blocks(self):
        t = Tile(640, 1280, alignment=32)
        assert t.area_blocks(640) == pytest.approx(2.0)


class TestPlanTiling:
    def test_single_resident_tile_when_fits(self):
        plan = plan_tiling(640, 640, tile_capacity_blocks=10, block_size=640)
        assert plan.num_tiles == 1
        assert plan.tiles[0].upload_needed is False
        assert plan.transferred_blocks_each_way == 0.0

    def test_v1_semantics_single_tile_transfers(self):
        plan = plan_tiling(
            640, 640, tile_capacity_blocks=10, block_size=640, keep_resident=0
        )
        assert plan.num_tiles == 1
        assert plan.tiles[0].upload_needed is True
        assert plan.transferred_blocks_each_way == pytest.approx(1.0)

    def test_out_of_core_split(self):
        # 4 blocks of capacity 1.5 -> 3 tiles
        plan = plan_tiling(1280, 1280, 1.5, block_size=640)
        assert plan.num_tiles >= 3
        plan.validate_coverage()

    def test_keep_resident_saves_two(self):
        plan = plan_tiling(640 * 4, 640 * 4, 3.9, block_size=640, keep_resident=2)
        resident = [t for t in plan.tiles if not t.upload_needed]
        assert len(resident) == 2
        assert plan.kept_resident == 2

    def test_at_least_one_tile_transfers_out_of_core(self):
        plan = plan_tiling(1280, 1280, 3.0, block_size=640, keep_resident=5)
        assert any(t.upload_needed for t in plan.tiles)

    def test_tiles_respect_capacity(self):
        plan = plan_tiling(3200, 3200, 7.3, block_size=640)
        for t in plan.tiles:
            assert t.area_blocks(640) <= 7.3 * (1 + 1e-9)

    def test_alignment_of_interior_tiles(self):
        plan = plan_tiling(2048, 2048, 2.0, block_size=640, alignment=32)
        for t in plan.tiles[:-1]:
            assert t.aligned

    def test_splits_longer_dimension(self):
        plan = plan_tiling(640, 2560, 2.0, block_size=640)
        # columns split, rows stay
        assert all(t.rows == 640 for t in plan.tiles)

    def test_rejects_impossible_split(self):
        with pytest.raises(ValueError):
            plan_tiling(2, 2, tile_capacity_blocks=1e-9, block_size=640)

    @given(
        rows=st.integers(min_value=32, max_value=3000),
        cols=st.integers(min_value=32, max_value=3000),
        capacity=st.floats(min_value=0.05, max_value=50.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_coverage_and_capacity_invariants(self, rows, cols, capacity):
        area = rows * cols / (640 * 640)
        if area / capacity > max(rows, cols):
            return  # unsatisfiable split request
        plan = plan_tiling(rows, cols, capacity, block_size=640)
        plan.validate_coverage()
        # every tile is within capacity unless the split hit its floor
        if plan.num_tiles < max(rows, cols):
            for t in plan.tiles:
                assert t.area_blocks(640) <= capacity * (1 + 1e-9)
        # transferred blocks never exceed the full area
        assert plan.transferred_blocks_each_way <= plan.area_blocks + 1e-9


class TestNearSquareShape:
    def test_exact_square(self):
        rows, cols = near_square_shape(4.0, 640)
        assert rows == cols == 1280

    def test_area_preserved_approximately(self):
        rows, cols = near_square_shape(7.3, 640)
        assert rows * cols / 640**2 == pytest.approx(7.3, rel=0.01)

    def test_nearly_square(self):
        rows, cols = near_square_shape(123.4, 640)
        assert 0.9 < rows / cols < 1.1

    @given(st.floats(min_value=0.01, max_value=10000))
    @settings(max_examples=60)
    def test_always_positive_dims(self, area):
        rows, cols = near_square_shape(area, 640)
        assert rows >= 1 and cols >= 1
