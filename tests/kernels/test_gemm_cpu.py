"""Unit tests for the CPU GEMM kernels (socket-group and per-core views)."""

import numpy as np
import pytest

from repro.kernels.gemm_cpu import (
    CpuCoreGemmKernel,
    CpuGemmKernel,
    numpy_gemm_update,
)


class TestCpuGemmKernel:
    def test_more_cores_faster_socket(self, sockets):
        t5 = CpuGemmKernel(sockets[0], 5).run_time(600)
        t6 = CpuGemmKernel(sockets[0], 6).run_time(600)
        assert t6 < t5

    def test_zero_area(self, sockets):
        assert CpuGemmKernel(sockets[0], 6).run_time(0) == 0.0

    def test_negative_area_rejected(self, sockets):
        with pytest.raises(ValueError):
            CpuGemmKernel(sockets[0], 6).run_time(-1)

    def test_too_many_cores_rejected(self, sockets):
        with pytest.raises(ValueError):
            CpuGemmKernel(sockets[0], 7)

    def test_gpu_active_slows_group(self, sockets):
        busy = CpuGemmKernel(sockets[0], 5, gpu_active=True).run_time(500)
        idle = CpuGemmKernel(sockets[0], 5, gpu_active=False).run_time(500)
        assert idle < busy < idle * 1.05

    def test_name_encodes_configuration(self, sockets):
        k = CpuGemmKernel(sockets[1], 5, gpu_active=True)
        assert "c5" in k.name and "+gpu" in k.name

    def test_unbounded_range(self, sockets):
        assert CpuGemmKernel(sockets[0], 6).valid_range.contains(1e9)


class TestCpuCoreGemmKernel:
    def test_consistent_with_socket_view(self, sockets):
        """core_time(a) == socket_time(c * a) — the two-views identity."""
        core = CpuCoreGemmKernel(sockets[0], active_cores=6)
        group = CpuGemmKernel(sockets[0], active_cores=6)
        a = 75.0
        assert core.run_time(a) == pytest.approx(group.run_time(6 * a))

    def test_contention_state_matters(self, sockets):
        solo = CpuCoreGemmKernel(sockets[0], 1).run_time(50)
        crowded = CpuCoreGemmKernel(sockets[0], 6).run_time(50)
        assert solo < crowded

    def test_zero_area(self, sockets):
        assert CpuCoreGemmKernel(sockets[0], 3).run_time(0) == 0.0


class TestNumpyGemmUpdate:
    def test_matches_reference(self):
        rng = np.random.default_rng(0)
        c = rng.standard_normal((6, 8))
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 8))
        expected = c + a @ b
        numpy_gemm_update(c, a, b)
        np.testing.assert_allclose(c, expected)

    def test_in_place(self):
        c = np.zeros((2, 2))
        original = c
        numpy_gemm_update(c, np.eye(2), np.eye(2))
        assert c is original
        np.testing.assert_allclose(c, np.eye(2))

    def test_accumulates_over_calls(self):
        c = np.zeros((2, 2))
        numpy_gemm_update(c, np.eye(2), np.eye(2))
        numpy_gemm_update(c, np.eye(2), np.eye(2))
        np.testing.assert_allclose(c, 2 * np.eye(2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            numpy_gemm_update(np.zeros((2, 2)), np.zeros((3, 1)), np.zeros((1, 2)))

    def test_inner_dim_mismatch_rejected(self):
        with pytest.raises(ValueError, match="inner"):
            numpy_gemm_update(np.zeros((2, 2)), np.zeros((2, 3)), np.zeros((4, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            numpy_gemm_update(np.zeros(4), np.zeros(4), np.zeros(4))
