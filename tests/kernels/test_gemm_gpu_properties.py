"""Property-based tests: GPU kernel invariants over random device specs."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.gemm_gpu import gpu_kernel
from repro.platform.contention import CpuGpuInterference
from repro.platform.device import SimulatedGpu
from repro.platform.presets import geforce_gtx680


@st.composite
def gpu_specs(draw):
    """Random-but-plausible GPU specs derived from the GTX680 baseline.

    Plausibility constraints encode what real accelerators look like:
    pageable copies never beat pinned ones, and the kernel saturates at
    sizes far below device capacity (the GTX680's half-point is 60 blocks
    against a ~1150-block capacity).  Degenerate devices that only
    saturate near their capacity genuinely reverse some version
    relationships through tile-granularity effects, so they are out of
    scope here.
    """
    pinned = draw(st.floats(min_value=1.0, max_value=16.0))
    pageable_fraction = draw(st.floats(min_value=0.1, max_value=1.0))
    memory_mb = draw(st.floats(min_value=512.0, max_value=8192.0))
    reserved_mb = draw(st.floats(min_value=16.0, max_value=128.0))
    block_mb = 640 * 640 * 4 / (1024 * 1024)
    capacity_blocks = (memory_mb - reserved_mb) / block_mb
    rate_half = draw(
        st.floats(min_value=5.0, max_value=max(6.0, capacity_blocks / 15.0))
    )
    return dataclasses.replace(
        geforce_gtx680(),
        memory_mb=memory_mb,
        reserved_mb=reserved_mb,
        peak_gflops=draw(st.floats(min_value=50.0, max_value=3000.0)),
        rate_half_blocks=rate_half,
        pcie_contig_gbs=draw(st.floats(min_value=1.0, max_value=16.0)),
        pcie_pitched_pinned_gbs=pinned,
        pcie_pageable_gbs=pinned * pageable_fraction,
        dma_engines=draw(st.sampled_from([1, 2])),
        concurrent_copy_slowdown=draw(st.floats(min_value=0.5, max_value=1.0)),
    )


def make_gpu(spec):
    return SimulatedGpu(
        name="prop",
        spec=spec,
        interference=CpuGpuInterference(),
        socket_cores=6,
        block_size=640,
    )


class TestGpuKernelProperties:
    @given(spec=gpu_specs(), area=st.floats(min_value=1.0, max_value=6000.0))
    @settings(max_examples=60, deadline=None)
    def test_v3_never_slower_than_v2(self, spec, area):
        gpu = make_gpu(spec)
        v2 = gpu_kernel(gpu, 2)
        v3 = gpu_kernel(gpu, 3)
        assert v3.run_time(area) <= v2.run_time(area) * (1 + 1e-9)

    @given(spec=gpu_specs(), area=st.floats(min_value=1.0, max_value=6000.0))
    @settings(max_examples=60, deadline=None)
    def test_v1_never_significantly_faster_than_v2(self, spec, area):
        """v2 dominates v1 up to a small granularity effect.

        v2's double-buffer sizing halves its out-of-core tiles; on degenerate
        specs where compute dominates transfers entirely, the smaller tiles'
        rate loss can exceed the transfer savings by a few percent — a real
        granularity trade-off, so the property allows that sliver.
        """
        gpu = make_gpu(spec)
        assert gpu_kernel(gpu, 1).run_time(area) >= gpu_kernel(gpu, 2).run_time(
            area
        ) * 0.95

    @given(spec=gpu_specs())
    @settings(max_examples=40, deadline=None)
    def test_time_monotone_in_area(self, spec):
        gpu = make_gpu(spec)
        cap = gpu.memory.resident_capacity_blocks()
        areas = [cap * f for f in (0.2, 0.6, 0.99, 1.3, 2.0, 3.5)]
        for version in (1, 2, 3):
            k = gpu_kernel(gpu, version)
            times = [k.run_time(a) for a in areas]
            assert all(
                t1 < t2 * (1 + 1e-9) for t1, t2 in zip(times, times[1:])
            )

    @given(spec=gpu_specs())
    @settings(max_examples=30, deadline=None)
    def test_v3_schedule_always_valid(self, spec):
        gpu = make_gpu(spec)
        cap = gpu.memory.resident_capacity_blocks()
        v3 = gpu_kernel(gpu, 3)
        sched = v3.schedule(cap * 2.3)
        sched.timeline.validate()
        assert sched.makespan <= sched.serial_time + 1e-9

    @given(
        spec=gpu_specs(),
        area=st.floats(min_value=10.0, max_value=5000.0),
        busy=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_contention_never_speeds_up(self, spec, area, busy):
        gpu = make_gpu(spec)
        k = gpu_kernel(gpu, 3)
        assert k.run_time(area, busy) >= k.run_time(area, 0) * (1 - 1e-9)
