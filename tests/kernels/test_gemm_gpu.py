"""Unit tests for the GPU GEMM kernel versions (paper Section V)."""

import math

import pytest

from repro.kernels.gemm_gpu import (
    GpuGemmKernelV1,
    GpuGemmKernelV2,
    GpuGemmKernelV3,
    InCoreGpuGemmKernel,
    gpu_kernel,
)
from repro.kernels.interface import kernel_speed_gflops


class TestFactory:
    def test_versions(self, gtx680):
        assert isinstance(gpu_kernel(gtx680, 1), GpuGemmKernelV1)
        assert isinstance(gpu_kernel(gtx680, 2), GpuGemmKernelV2)
        assert isinstance(gpu_kernel(gtx680, 3), GpuGemmKernelV3)

    def test_default_is_v3(self, gtx680):
        assert isinstance(gpu_kernel(gtx680), GpuGemmKernelV3)

    def test_unknown_version(self, gtx680):
        with pytest.raises(ValueError, match="version 4"):
            gpu_kernel(gtx680, 4)


class TestVersionRelationships:
    def test_v2_equals_v3_resident(self, gtx680):
        """Overlap has nothing to hide while C is resident (Fig. 3)."""
        v2 = gpu_kernel(gtx680, 2)
        v3 = gpu_kernel(gtx680, 3)
        x = v2.memory_limit_blocks * 0.8
        assert v2.run_time(x) == pytest.approx(v3.run_time(x))

    def test_v1_slower_than_v2_everywhere(self, gtx680):
        v1 = gpu_kernel(gtx680, 1)
        v2 = gpu_kernel(gtx680, 2)
        for x in (100, 800, 1500, 3000):
            assert v1.run_time(x) > v2.run_time(x)

    def test_v3_never_slower_than_v2(self, gtx680):
        v2 = gpu_kernel(gtx680, 2)
        v3 = gpu_kernel(gtx680, 3)
        for x in (100, 1000, 1500, 2500, 4000):
            assert v3.run_time(x) <= v2.run_time(x) * (1 + 1e-9)

    def test_v2_drops_sharply_at_memory_limit(self, gtx680):
        """Fig. 3: the cliff at the memory-limit line."""
        v2 = gpu_kernel(gtx680, 2)
        cap = v2.memory_limit_blocks
        inside = kernel_speed_gflops(v2, cap * 0.95)
        outside = kernel_speed_gflops(v2, cap * 1.1)
        assert outside < inside * 0.7

    def test_speeds_ramp_up_at_small_sizes(self, gtx680):
        v3 = gpu_kernel(gtx680, 3)
        assert kernel_speed_gflops(v3, 50) < kernel_speed_gflops(v3, 800)

    def test_zero_area_zero_time(self, gtx680):
        for v in (1, 2, 3):
            assert gpu_kernel(gtx680, v).run_time(0) == 0.0

    def test_contention_slows_all_versions(self, gtx680):
        for v in (1, 2, 3):
            k = gpu_kernel(gtx680, v)
            assert k.run_time(900, busy_cpu_cores=5) > k.run_time(900)


class TestOverlapSchedule:
    def test_schedule_valid(self, gtx680):
        v3 = gpu_kernel(gtx680, 3)
        x = v3.memory_limit_blocks * 2.0
        sched = v3.schedule(x)
        sched.timeline.validate()
        assert sched.makespan == pytest.approx(v3.run_time(x))

    def test_schedule_overlaps(self, gtx680):
        v3 = gpu_kernel(gtx680, 3)
        x = v3.memory_limit_blocks * 2.0
        sched = v3.schedule(x)
        assert sched.overlap_gain > 1.0

    def test_c870_single_engine_resources(self, c870):
        v3 = gpu_kernel(c870, 3)
        x = v3.memory_limit_blocks * 1.5
        sched = v3.schedule(x)
        assert "dma" in sched.timeline.resources()
        assert "h2d" not in sched.timeline.resources()

    def test_gtx680_dual_engine_resources(self, gtx680):
        v3 = gpu_kernel(gtx680, 3)
        x = v3.memory_limit_blocks * 2.5
        sched = v3.schedule(x)
        resources = sched.timeline.resources()
        assert "h2d" in resources and "d2h" in resources


class TestInCoreKernel:
    def test_bounded_range(self, gtx680):
        k = InCoreGpuGemmKernel(gpu=gtx680)
        assert math.isfinite(k.valid_range.max_blocks)
        assert k.valid_range.max_blocks == pytest.approx(k.memory_limit_blocks)

    def test_raises_beyond_memory(self, gtx680):
        k = InCoreGpuGemmKernel(gpu=gtx680)
        with pytest.raises(ValueError, match="outside the valid"):
            k.run_time(k.memory_limit_blocks * 1.01)

    def test_matches_v2_within_range(self, gtx680):
        k = InCoreGpuGemmKernel(gpu=gtx680)
        v2 = gpu_kernel(gtx680, 2)
        x = k.memory_limit_blocks * 0.5
        assert k.run_time(x) == pytest.approx(v2.run_time(x))


class TestMonotonicity:
    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_run_time_increases_with_area(self, gtx680, version):
        k = gpu_kernel(gtx680, version)
        xs = [50, 200, 600, 1000, 1400, 2000, 3000, 4500]
        times = [k.run_time(x) for x in xs]
        assert all(a < b for a, b in zip(times, times[1:]))

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_c870_run_time_increases_with_area(self, c870, version):
        k = gpu_kernel(c870, version)
        xs = [50, 200, 500, 800, 1200, 2000]
        times = [k.run_time(x) for x in xs]
        assert all(a < b for a, b in zip(times, times[1:]))
