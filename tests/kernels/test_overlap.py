"""Unit tests for the DMA/stream overlap scheduler (Fig. 4b)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.overlap import TileWork, schedule_overlap


def works(*triples):
    return [TileWork(u, c, d) for (u, c, d) in triples]


class TestScheduleBasics:
    def test_single_tile_serial(self):
        s = schedule_overlap(works((1.0, 2.0, 1.0)), dma_engines=2)
        assert s.makespan == pytest.approx(4.0)
        assert s.serial_time == pytest.approx(4.0)

    def test_empty_like_tile(self):
        s = schedule_overlap(works((0.0, 1.0, 0.0)), dma_engines=2)
        assert s.makespan == pytest.approx(1.0)

    def test_rejects_bad_engine_count(self):
        with pytest.raises(ValueError):
            schedule_overlap(works((1, 1, 1)), dma_engines=0)

    def test_rejects_bad_buffer_count(self):
        with pytest.raises(ValueError):
            schedule_overlap(works((1, 1, 1)), dma_engines=2, c_buffers=0)


class TestOverlapBehaviour:
    def test_two_dma_overlaps_upload_with_compute(self):
        """Upload of tile 1 runs under compute of tile 0."""
        s = schedule_overlap(
            works((1.0, 1.0, 1.0), (1.0, 1.0, 1.0)), dma_engines=2
        )
        assert s.makespan < s.serial_time

    def test_pipeline_approaches_bottleneck(self):
        """Many equal tiles: makespan approaches the busiest resource."""
        tiles = works(*[(0.5, 1.0, 0.5)] * 10)
        s = schedule_overlap(tiles, dma_engines=2)
        compute_total = 10.0
        assert compute_total <= s.makespan <= compute_total + 2.0 + 1e-9

    def test_transfer_bound_pipeline(self):
        tiles = works(*[(2.0, 0.5, 2.0)] * 6)
        s = schedule_overlap(tiles, dma_engines=2)
        # bound by one DMA direction: 12s of uploads
        assert s.makespan >= 12.0
        assert s.makespan < s.serial_time

    def test_single_dma_serialises_directions(self):
        tiles = works(*[(1.0, 0.1, 1.0)] * 4)
        two = schedule_overlap(tiles, dma_engines=2)
        one = schedule_overlap(tiles, dma_engines=1)
        # one engine must carry 8s of copies; two engines split them
        assert one.makespan >= 8.0
        assert two.makespan < one.makespan

    def test_single_dma_still_overlaps_compute(self):
        """Fig. 4b bottom: C870 overlaps copies with GEMM, one copy at a time."""
        tiles = works(*[(1.0, 1.0, 1.0)] * 4)
        s = schedule_overlap(tiles, dma_engines=1)
        assert s.makespan < s.serial_time

    def test_resident_tiles_warm_the_pipeline(self):
        """Tiles with no transfers (kept resident) compute immediately."""
        tiles = works((0.1, 1.0, 0.0), (0.1, 1.0, 0.0), (1.0, 1.0, 1.0))
        s = schedule_overlap(tiles, dma_engines=2)
        first_compute = min(
            iv.start for iv in s.timeline.on_resource("kernel")
        )
        assert first_compute == pytest.approx(0.1)


class TestScheduleIntegrity:
    def test_no_resource_conflicts(self):
        tiles = works(*[(0.7, 1.3, 0.9)] * 8)
        s = schedule_overlap(tiles, dma_engines=2)
        s.timeline.validate()

    def test_download_after_compute(self):
        tiles = works(*[(0.5, 1.0, 0.5)] * 5)
        s = schedule_overlap(tiles, dma_engines=2)
        computes = {
            iv.label: iv for iv in s.timeline.intervals if iv.label.startswith("comp")
        }
        for iv in s.timeline.intervals:
            if iv.label.startswith("down"):
                idx = iv.label[4:]
                assert iv.start >= computes[f"comp{idx}"].end - 1e-12

    def test_buffer_constraint_limits_inflight(self):
        """With 2 C buffers, upload i+2 waits for download i."""
        tiles = works(*[(1.0, 0.01, 1.0)] * 5)
        s = schedule_overlap(tiles, dma_engines=2, c_buffers=2)
        ups = sorted(
            (iv for iv in s.timeline.intervals if iv.label.startswith("up")),
            key=lambda iv: int(iv.label[2:]),
        )
        downs = {
            int(iv.label[4:]): iv
            for iv in s.timeline.intervals
            if iv.label.startswith("down")
        }
        for i, up in enumerate(ups):
            if i >= 2:
                assert up.start >= downs[i - 2].end - 1e-12

    def test_makespan_at_least_critical_path(self):
        tiles = works((1.0, 2.0, 3.0))
        s = schedule_overlap(tiles, dma_engines=2)
        assert s.makespan >= 6.0 - 1e-12

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=5),
                st.floats(min_value=0, max_value=5),
                st.floats(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=12,
        ),
        st.sampled_from([1, 2]),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_schedules_are_valid_and_bounded(self, triples, engines):
        tiles = works(*triples)
        s = schedule_overlap(tiles, dma_engines=engines)
        s.timeline.validate()
        # overlap can only help, never hurt, and cannot beat the busiest
        # resource's total work
        assert s.makespan <= s.serial_time + 1e-9
        compute_total = sum(t.compute for t in tiles)
        assert s.makespan >= compute_total - 1e-9
        if engines == 1:
            copies = sum(t.upload + t.download for t in tiles)
            assert s.makespan >= copies - 1e-9

    def test_overlap_gain_property(self):
        tiles = works(*[(1.0, 1.0, 1.0)] * 6)
        s = schedule_overlap(tiles, dma_engines=2)
        assert s.overlap_gain > 1.0
