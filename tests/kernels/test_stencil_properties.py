"""Property tests for the stencil kernels and Jacobi strip planning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.app.jacobi import (
    StripPartition,
    reference_jacobi,
    run_partitioned_jacobi,
)
from repro.kernels.stencil import CpuStencilKernel, GpuStencilKernel


class TestStencilKernelProperties:
    @given(
        rows=st.floats(min_value=1.0, max_value=200_000.0),
        cores=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60)
    def test_cpu_time_positive_and_monotone_in_rows(self, sockets, rows, cores):
        k = CpuStencilKernel(sockets[0], cores, width=16384)
        t = k.run_time(rows)
        assert t > 0
        assert k.run_time(rows * 2) > t

    @given(cores=st.integers(min_value=1, max_value=6))
    @settings(max_examples=20)
    def test_cpu_more_cores_never_slower(self, sockets, cores):
        if cores == 6:
            return
        k_small = CpuStencilKernel(sockets[0], cores, width=16384)
        k_big = CpuStencilKernel(sockets[0], cores + 1, width=16384)
        assert k_big.run_time(30000) <= k_small.run_time(30000) * (1 + 1e-9)

    @given(rows=st.floats(min_value=1.0, max_value=100_000.0))
    @settings(max_examples=60)
    def test_gpu_streamed_time_monotone(self, gtx680, rows):
        k = GpuStencilKernel(gtx680, width=16384)
        assert k.run_time(rows * 1.5) > k.run_time(rows)

    @given(width=st.integers(min_value=64, max_value=65536))
    @settings(max_examples=30)
    def test_gpu_capacity_scales_inversely_with_width(self, gtx680, width):
        k = GpuStencilKernel(gtx680, width=width)
        expected = gtx680.spec.usable_memory_mb * 1024 * 1024 / (2 * width * 4)
        assert k.resident_capacity_rows == pytest.approx(expected)


class TestJacobiNumericProperties:
    @given(
        heights=st.lists(
            st.integers(min_value=0, max_value=20), min_size=1, max_size=6
        ).filter(lambda h: sum(h) >= 3),
        iterations=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_strip_decomposition_is_exact(self, heights, iterations):
        total = sum(heights)
        part = StripPartition(total_rows=total, rows_per_unit=tuple(heights))
        rng = np.random.default_rng(sum(heights))
        grid = rng.standard_normal((total, 7))
        got = run_partitioned_jacobi(grid, part, iterations)
        ref = reference_jacobi(grid, iterations)
        np.testing.assert_allclose(got, ref, rtol=0, atol=1e-12)
