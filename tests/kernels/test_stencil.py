"""Unit tests for the Jacobi stencil kernels."""

import numpy as np
import pytest

from repro.kernels.stencil import (
    CpuStencilKernel,
    GpuStencilKernel,
    numpy_jacobi_sweep,
)

WIDTH = 16384


class TestCpuStencilKernel:
    def test_bandwidth_bound_scaling(self, sockets):
        """Past three cores the DRAM bus saturates: no further speedup."""
        t3 = CpuStencilKernel(sockets[0], 3, WIDTH).run_time(20000)
        t6 = CpuStencilKernel(sockets[0], 6, WIDTH).run_time(20000)
        assert t6 == pytest.approx(t3, rel=0.02)  # the wall, unlike GEMM

    def test_single_core_flop_bound(self, sockets):
        """One core cannot saturate the bus: core count matters at c=1->2."""
        t1 = CpuStencilKernel(sockets[0], 1, WIDTH).run_time(20000)
        t2 = CpuStencilKernel(sockets[0], 2, WIDTH).run_time(20000)
        assert t2 < t1

    def test_linear_in_rows(self, sockets):
        k = CpuStencilKernel(sockets[0], 6, WIDTH)
        assert k.run_time(40000) == pytest.approx(
            2 * k.run_time(20000), rel=0.01
        )

    def test_zero_rows(self, sockets):
        assert CpuStencilKernel(sockets[0], 6, WIDTH).run_time(0) == 0.0

    def test_gpu_interference_small(self, sockets):
        busy = CpuStencilKernel(sockets[0], 5, WIDTH, gpu_active=True)
        idle = CpuStencilKernel(sockets[0], 5, WIDTH, gpu_active=False)
        assert idle.run_time(10000) < busy.run_time(10000) < idle.run_time(10000) * 1.05

    def test_rejects_too_many_cores(self, sockets):
        with pytest.raises(ValueError):
            CpuStencilKernel(sockets[0], 7, WIDTH)


class TestGpuStencilKernel:
    def test_resident_capacity(self, gtx680):
        k = GpuStencilKernel(gtx680, WIDTH)
        cap = k.resident_capacity_rows
        # two float32 buffers of width 16384: ~15-16k rows in 2 GB
        assert 13000 < cap < 17000

    def test_gpu_dominates_sockets_in_core(self, gtx680, sockets):
        gpu = GpuStencilKernel(gtx680, WIDTH)
        cpu = CpuStencilKernel(sockets[2], 6, WIDTH)
        rows = 10000
        assert gpu.run_time(rows) < cpu.run_time(rows) / 8

    def test_out_of_core_cliff(self, gtx680):
        k = GpuStencilKernel(gtx680, WIDTH)
        cap = k.resident_capacity_rows
        in_core = k.run_time(cap * 0.99)
        past = k.run_time(cap * 1.2)
        assert past > 5 * in_core

    def test_streamed_time_monotone(self, gtx680):
        k = GpuStencilKernel(gtx680, WIDTH)
        rows = [5000, 10000, 15000, 17000, 20000, 30000]
        times = [k.run_time(r) for r in rows]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_resident_variant_bounded(self, gtx680):
        k = GpuStencilKernel(gtx680, WIDTH, streamed=False)
        assert k.valid_range.max_blocks == pytest.approx(
            k.resident_capacity_rows
        )
        with pytest.raises(ValueError, match="outside the valid"):
            k.run_time(k.resident_capacity_rows * 1.1)

    def test_contention_slows_gpu(self, gtx680):
        k = GpuStencilKernel(gtx680, WIDTH)
        assert k.run_time(10000, busy_cpu_cores=5) > k.run_time(10000)

    def test_c870_smaller_capacity(self, gtx680, c870):
        big = GpuStencilKernel(gtx680, WIDTH)
        small = GpuStencilKernel(c870, WIDTH)
        assert small.resident_capacity_rows < big.resident_capacity_rows


class TestNumpyJacobiSweep:
    def test_interior_update(self):
        grid = np.zeros((4, 4))
        grid[0, :] = 4.0  # hot top boundary
        out = np.empty_like(grid)
        numpy_jacobi_sweep(grid, out)
        assert out[1, 1] == pytest.approx(1.0)  # only the top neighbour is hot
        assert out[0, 0] == 4.0  # boundary kept

    def test_boundary_rows_fixed(self):
        rng = np.random.default_rng(0)
        grid = rng.standard_normal((6, 5))
        out = np.empty_like(grid)
        numpy_jacobi_sweep(grid, out)
        np.testing.assert_array_equal(out[0], grid[0])
        np.testing.assert_array_equal(out[-1], grid[-1])
        np.testing.assert_array_equal(out[:, 0], grid[:, 0])

    def test_constant_field_is_fixed_point(self):
        grid = np.full((5, 5), 3.0)
        out = np.empty_like(grid)
        numpy_jacobi_sweep(grid, out)
        np.testing.assert_allclose(out, grid)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            numpy_jacobi_sweep(np.zeros((3, 3)), np.zeros((4, 4)))
