"""Unit tests for the kernel protocol types."""

import math

import pytest

from repro.kernels.gemm_cpu import CpuGemmKernel
from repro.kernels.interface import Kernel, KernelRange, kernel_speed_gflops


class TestKernelRange:
    def test_unbounded_by_default(self):
        r = KernelRange()
        assert r.contains(1e15)

    def test_bounded_containment(self):
        r = KernelRange(max_blocks=100)
        assert r.contains(100)
        assert not r.contains(100.1)

    def test_min_bound(self):
        r = KernelRange(min_blocks=10, max_blocks=20)
        assert not r.contains(5)

    def test_require_raises_with_kernel_name(self):
        r = KernelRange(max_blocks=10)
        with pytest.raises(ValueError, match="mykernel"):
            r.require(11, "mykernel")

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            KernelRange(min_blocks=5, max_blocks=5)


class TestProtocol:
    def test_cpu_kernel_satisfies_protocol(self, sockets):
        kernel = CpuGemmKernel(sockets[0], 5)
        assert isinstance(kernel, Kernel)

    def test_speed_helper(self, sockets):
        kernel = CpuGemmKernel(sockets[0], 5)
        speed = kernel_speed_gflops(kernel, 500)
        assert 60 < speed < 110  # a 5-core socket's band

    def test_speed_helper_rejects_zero_area(self, sockets):
        kernel = CpuGemmKernel(sockets[0], 5)
        with pytest.raises(ValueError):
            kernel_speed_gflops(kernel, 0)
