"""Tests for the cross-run residency policy (Fig. 4a's reversal trick)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.outofcore import plan_tiling, simulate_consecutive_runs


def make_plan(num_tiles, keep=2):
    """A plan with exactly num_tiles square-ish tiles of ~1 block each."""
    rows = 640
    cols = 640 * num_tiles
    return plan_tiling(
        rows, cols, tile_capacity_blocks=1.01, block_size=640, keep_resident=keep
    )


class TestResidencySimulation:
    def test_first_run_uploads_everything(self):
        plan = make_plan(5)
        logs = simulate_consecutive_runs(plan, 1)
        assert sorted(logs[0].uploads) == [0, 1, 2, 3, 4]

    def test_steady_state_matches_timing_model(self):
        """After warm-up, transfers per run equal the plan's accounting."""
        plan = make_plan(5, keep=2)
        logs = simulate_consecutive_runs(plan, 6)
        expected = len(plan.uploads)  # k - 2 tiles
        for log in logs[1:]:
            assert len(log.uploads) == expected
            assert len(log.downloads) == expected

    def test_reversal_saves_two_per_direction(self):
        """The headline claim: keep-2 + reversal saves 2 each way per run."""
        plan_keep = make_plan(6, keep=2)
        plan_v1 = make_plan(6, keep=0)
        keep_logs = simulate_consecutive_runs(plan_keep, 4)
        v1_logs = simulate_consecutive_runs(plan_v1, 4)
        for k_log, v_log in zip(keep_logs[1:], v1_logs[1:]):
            assert len(v_log.uploads) - len(k_log.uploads) == 2
            assert len(v_log.downloads) - len(k_log.downloads) == 2

    def test_resident_tiles_are_runs_first(self):
        """Each run starts with the tiles the previous run left behind."""
        plan = make_plan(5, keep=2)
        logs = simulate_consecutive_runs(plan, 4)
        for prev, nxt in zip(logs, logs[1:]):
            # no uploaded tile in the next run is one that stayed resident
            assert not set(nxt.uploads) & set(prev.resident_after)

    def test_v1_no_residency(self):
        plan = make_plan(4, keep=0)
        logs = simulate_consecutive_runs(plan, 3)
        for log in logs:
            assert len(log.uploads) == 4
            assert len(log.downloads) == 4
            assert log.resident_after == ()

    def test_single_tile_uploads_once(self):
        plan = make_plan(1, keep=2)
        logs = simulate_consecutive_runs(plan, 5)
        assert logs[0].uploads == (0,)
        for log in logs[1:]:
            assert log.uploads == ()
            assert log.downloads == ()

    def test_rejects_zero_runs(self):
        with pytest.raises(ValueError):
            simulate_consecutive_runs(make_plan(3), 0)

    @given(
        num_tiles=st.integers(min_value=1, max_value=12),
        keep=st.integers(min_value=0, max_value=4),
        runs=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_tile_updated_every_run(self, num_tiles, keep, runs):
        """Conservation: each run touches each tile exactly once; residency
        never exceeds the configured capacity."""
        plan = make_plan(num_tiles, keep=keep)
        logs = simulate_consecutive_runs(plan, runs)
        if keep == 0:
            capacity = 0
        elif num_tiles == 1:
            capacity = 1
        else:
            capacity = plan.kept_resident
        for log in logs:
            assert len(log.resident_after) <= max(capacity, 0)
            # uploads and prior residents together cover all tiles
            assert len(set(log.uploads)) == len(log.uploads)
        # steady state transfer count equals the plan's accounting
        steady = logs[-1]
        expected = len(plan.uploads)
        assert len(steady.uploads) == expected
