"""Every subpackage's __all__ resolves and names real objects."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.kernels",
    "repro.measurement",
    "repro.platform",
    "repro.runtime",
    "repro.util",
    "repro.experiments",
    "repro.experiments.ablations",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    missing = [name for name in exported if not hasattr(module, name)]
    assert missing == [], f"{package} exports missing names: {missing}"


@pytest.mark.parametrize("package", PACKAGES)
def test_exports_are_documented(package):
    """Exported classes and functions carry docstrings."""
    module = importlib.import_module(package)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if callable(obj) and not (getattr(obj, "__doc__", None) or "").strip():
            undocumented.append(name)
    assert undocumented == [], (
        f"{package} exports undocumented callables: {undocumented}"
    )


def test_flagship_workflow_importable_from_top_level():
    import repro

    assert callable(repro.partition_fpm)
    assert callable(repro.ig_icl_node)
    assert callable(repro.HybridMatMul)
