"""The public API surface: everything __all__ promises exists and works."""

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_flow(self):
        """The README quickstart, miniaturised."""
        app = repro.HybridMatMul(repro.ig_icl_node(), seed=3, noise_sigma=0.0)
        app.build_models(
            max_blocks=1800.0, cpu_points=6, gpu_points=8, adaptive=False
        )
        plan, result = app.run(20, repro.PartitioningStrategy.FPM)
        assert sum(plan.unit_allocations) == 400
        assert result.total_time > 0

    def test_partitioners_importable_and_consistent(self):
        fn = repro.SpeedFunction.constant(10.0)
        a = repro.partition_fpm([fn, fn], 10.0)
        b = repro.partition_homogeneous(2, 10.0)
        assert a == b
