"""Fixtures for the partition-service suite.

Every test here runs the *in-process server*: coroutines driven by
``asyncio.run`` against :meth:`PartitionService.handle` (or a real
:class:`HttpServer` bound to port 0 for the transport tests).  Model
knobs are deliberately coarse so cold FPM builds stay in the tens of
milliseconds and large concurrent bursts finish quickly.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import HttpServer, PartitionService
from repro.store import ResultStore

#: Coarse model knobs: a cold build takes ~20 ms instead of seconds.
FAST_MODEL = {
    "seed": 42,
    "noise_sigma": 0.01,
    "cpu_points": 4,
    "gpu_points": 5,
    "adaptive": False,
    "max_blocks": 1800.0,
}


def pytest_collection_modifyitems(items):
    # Everything under tests/service/ carries the `service` marker so the
    # suite can be selected/excluded with `-m service`.
    for item in items:
        item.add_marker(pytest.mark.service)


def make_body(
    preset: str = "cpu_only",
    total_blocks: float = 400.0,
    strategy: str = "fpm",
    **model_overrides,
) -> bytes:
    """A valid ``POST /partition`` body with fast model knobs."""
    return json.dumps(
        {
            "preset": preset,
            "total_blocks": total_blocks,
            "strategy": strategy,
            "model": {**FAST_MODEL, **model_overrides},
        }
    ).encode("utf-8")


@pytest.fixture()
def body():
    """The request-body builder (importable helper, exposed as a fixture)."""
    return make_body


@pytest.fixture()
def service_store(tmp_path):
    """A throwaway on-disk store for one service instance."""
    return ResultStore(tmp_path / "svc-store")


@pytest.fixture()
def run_service(service_store):
    """Run ``await fn(service)`` inside a fresh started service.

    ``run_service(fn, workers=..., store=...)`` enters the service's
    async context (tracer install + solve pool) around the callable and
    returns its result.
    """

    def runner(fn, *, store=service_store, **service_kwargs):
        async def main():
            async with PartitionService(store=store, **service_kwargs) as svc:
                return await fn(svc)

        return asyncio.run(main())

    return runner


@pytest.fixture()
def run_server(service_store):
    """Run ``await fn(server)`` against a live HTTP server on port 0."""

    def runner(fn, *, store=service_store, **service_kwargs):
        async def main():
            service = PartitionService(store=store, **service_kwargs)
            async with HttpServer(service, port=0) as server:
                return await fn(server)

        return asyncio.run(main())

    return runner
