"""Property tests for the partition service (hypothesis).

Three contracts, searched rather than enumerated:

* every *valid* request yields an allocation that sums to its
  ``total_blocks`` and matches :func:`repro.api.partition` called
  directly on the same models — the daemon adds caching, not arithmetic;
* repeating a request is idempotent (and served hot);
* every *malformed* body maps to a structured 4xx — fuzzed junk can
  never surface as a 500.

The suites run under the bounded tier-1 hypothesis profile; a single
module-scoped service keeps its model LRU warm across examples so the
valid-request property costs one cold build per preset, not per example.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import api
from repro.platform.presets import cpu_only_node
from repro.service.core import PartitionService
from repro.store import ResultStore, use_store

from tests.service.conftest import FAST_MODEL

pytestmark = pytest.mark.property

_SUPPRESS = [HealthCheck.function_scoped_fixture]


@pytest.fixture(scope="module")
def warm_service(tmp_path_factory):
    """One service whose model LRU survives across hypothesis examples."""
    store = ResultStore(tmp_path_factory.mktemp("service-prop"))
    service = PartitionService(store=store)
    asyncio.run(service.start())
    yield service
    asyncio.run(service.aclose())


def _post(service: PartitionService, payload: dict):
    body = json.dumps(payload).encode("utf-8")
    return asyncio.run(service.handle("POST", "/partition", body))


valid_requests = st.fixed_dictionaries(
    {
        "preset": st.sampled_from(["cpu_only", "ig_icl"]),
        "total_blocks": st.one_of(
            st.integers(min_value=1, max_value=1800).map(float),
            st.floats(min_value=1.0, max_value=1800.0,
                      allow_nan=False, allow_infinity=False),
        ),
        "strategy": st.sampled_from(["fpm", "geometric", "cpm", "homogeneous"]),
        "model": st.just(dict(FAST_MODEL)),
    }
)


@given(request_payload=valid_requests)
@settings(suppress_health_check=_SUPPRESS)
def test_allocation_sums_to_total_blocks(warm_service, request_payload):
    response = _post(warm_service, request_payload)
    assert response.status == 200
    payload = response.json
    assert sum(payload["allocation"].values()) == pytest.approx(
        request_payload["total_blocks"], rel=1e-9
    )
    assert all(share >= 0.0 for share in payload["allocation"].values())


@given(request_payload=valid_requests)
@settings(suppress_health_check=_SUPPRESS)
def test_service_matches_direct_api_call(warm_service, request_payload):
    """The daemon's answer is exactly the library's answer."""
    response = _post(warm_service, request_payload)
    assert response.status == 200
    served = response.json["allocation"]

    node = None if request_payload["preset"] == "ig_icl" else cpu_only_node()
    with use_store(warm_service.store):
        models = api.build_models(node=node, **FAST_MODEL)
    ordered = [models[name] for name in sorted(models)]
    expected = list(
        api.Solver(strategy=request_payload["strategy"])
        .solve(ordered, request_payload["total_blocks"])
        .allocations
    )
    assert list(served.values()) == pytest.approx(list(expected), rel=1e-12)
    assert list(served.keys()) == sorted(models)


@given(request_payload=valid_requests)
@settings(suppress_health_check=_SUPPRESS)
def test_repeat_requests_are_idempotent_and_hot(warm_service, request_payload):
    first = _post(warm_service, request_payload)
    second = _post(warm_service, request_payload)
    assert first.status == second.status == 200
    assert second.json["allocation"] == first.json["allocation"]
    assert second.json["source"] == "hot"


json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(10**6), max_value=10**6)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)

malformed_bodies = st.one_of(
    st.binary(max_size=64),  # raw junk, possibly not UTF-8 or not JSON
    json_values.map(lambda v: json.dumps(v).encode("utf-8")),
    # structurally close misses: a valid shell with one corrupted field
    st.fixed_dictionaries(
        {
            "preset": st.sampled_from(["cpu_only", "nope", 7, None]),
            "total_blocks": st.sampled_from(
                [-1, 0, "many", None, True, [400.0]]
            ),
            "strategy": st.sampled_from(["fpm", "quantum", 3]),
            "model": st.sampled_from(
                [{"seed": 1.5}, {"unknown_knob": 1}, [], "fast"]
            ),
        }
    ).map(lambda v: json.dumps(v).encode("utf-8")),
)


@given(body=malformed_bodies)
@settings(suppress_health_check=_SUPPRESS)
def test_malformed_bodies_never_500(warm_service, body):
    response = asyncio.run(warm_service.handle("POST", "/partition", body))
    assert response.status != 500
    assert 200 <= response.status < 500
    if response.status != 200:
        payload = response.json
        assert set(payload) == {"error"}
        assert isinstance(payload["error"].get("code"), str)
        assert isinstance(payload["error"].get("message"), str)
