"""The load generator: determinism, seed hygiene, and the load test itself.

The acceptance load test lives here: ≥1000 concurrent simulated clients
against the in-process server with zero dropped requests.  Determinism
is tested at every layer — the spec pool, the zipf weights, the
materialised schedule, and the seed-pure half of a full run's summary.
"""

from __future__ import annotations

import asyncio
import math

import pytest

from repro.service import (
    LoadgenConfig,
    build_schedule,
    run_load,
    spec_pool,
)
from repro.service.core import PartitionService
from repro.service.loadgen import schedule_digest, zipf_weights
from repro.store import ResultStore


SMALL = dict(clients=6, requests_per_client=2, spec_pool=3)


# ------------------------------------------------------------- configuration
@pytest.mark.parametrize("bad_seed", [None, 1.5, True, "42", 2**1, float("nan")])
def test_wall_clock_style_seeds_are_refused(bad_seed):
    if bad_seed == 2:  # a plain int is fine — the control case
        LoadgenConfig(seed=bad_seed)
        return
    with pytest.raises(TypeError, match="plain integer"):
        LoadgenConfig(seed=bad_seed)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(clients=0),
        dict(requests_per_client=-1),
        dict(spec_pool=0),
        dict(zipf_exponent=0.0),
        dict(total_blocks_choices=()),
    ],
)
def test_invalid_shapes_are_rejected(kwargs):
    with pytest.raises((ValueError, TypeError)):
        LoadgenConfig(seed=1, **kwargs)


def test_zipf_weights_are_a_decreasing_distribution():
    weights = zipf_weights(8, 1.2)
    assert math.isclose(sum(weights), 1.0, rel_tol=1e-12)
    assert all(a > b for a, b in zip(weights, weights[1:]))
    # a steeper exponent concentrates more mass on the head
    assert zipf_weights(8, 2.0)[0] > weights[0]


# --------------------------------------------------------------- determinism
def test_spec_pool_is_seed_pure_and_diverse():
    config = LoadgenConfig(seed=77, **SMALL)
    pool_a = spec_pool(config)
    pool_b = spec_pool(config)
    assert pool_a == pool_b
    assert len({spec.name for spec in pool_a}) == config.spec_pool
    assert spec_pool(LoadgenConfig(seed=78, **SMALL)) != pool_a


def test_schedule_is_seed_pure():
    config = LoadgenConfig(seed=5, **SMALL)
    first = build_schedule(config)
    second = build_schedule(config)
    assert first == second
    assert schedule_digest(first) == schedule_digest(second)
    assert len(first) == config.clients
    assert all(len(reqs) == config.requests_per_client for reqs in first)
    other = build_schedule(LoadgenConfig(seed=6, **SMALL))
    assert schedule_digest(other) != schedule_digest(first)


def test_schedule_requests_carry_the_config_knobs():
    config = LoadgenConfig(seed=5, **SMALL, strategy="cpm", cpu_points=4)
    for requests in build_schedule(config):
        for request in requests:
            assert request["strategy"] == "cpm"
            assert request["model"]["cpu_points"] == 4
            assert request["model"]["seed"] == config.seed
            assert request["total_blocks"] in config.total_blocks_choices
            assert request["node"]["name"].startswith("synthetic-node-")


def _run(config: LoadgenConfig, store_dir):
    async def main():
        async with PartitionService(store=ResultStore(store_dir)) as svc:
            return await run_load(config, service=svc)

    return asyncio.run(main())


def test_run_load_summary_is_deterministic(tmp_path):
    config = LoadgenConfig(seed=11, **SMALL, cpu_points=4, gpu_points=5)
    first = _run(config, tmp_path / "a")
    second = _run(config, tmp_path / "b")
    assert first.deterministic() == second.deterministic()
    assert first.requests_total == 12
    assert first.ok == 12
    assert first.dropped == 0
    # wall-clock fields exist but stay out of the deterministic view
    assert first.latency_p99_s >= first.latency_p50_s > 0.0
    assert "latency_p50_s" not in first.deterministic()
    assert "throughput_rps" not in first.deterministic()


def test_run_load_requires_exactly_one_target():
    config = LoadgenConfig(seed=1, **SMALL)
    with pytest.raises(ValueError, match="exactly one target"):
        asyncio.run(run_load(config))
    with pytest.raises(ValueError, match="exactly one target"):
        asyncio.run(
            run_load(
                config,
                service=PartitionService(),
                host="127.0.0.1",
                port=1,
            )
        )


# ---------------------------------------------------------- the load test
def test_thousand_concurrent_clients_zero_drops(tmp_path):
    """The acceptance criterion: ≥1000 clients, nothing dropped."""
    config = LoadgenConfig(
        seed=2026,
        clients=1000,
        requests_per_client=1,
        spec_pool=3,
        cpu_points=4,
        gpu_points=5,
    )
    summary = _run(config, tmp_path / "store")
    assert summary.requests_total == 1000
    assert summary.dropped == 0
    assert summary.server_errors == 0
    assert summary.client_errors == 0
    assert summary.ok == 1000
    # the zipf head coalesces: at most one build per distinct spec
    assert summary.source_counts.get("built", 0) <= config.spec_pool
    assert (
        summary.ok
        + summary.client_errors
        + summary.server_errors
        + summary.dropped
        == summary.requests_total
    )


def test_load_over_tcp_sockets_zero_drops(tmp_path):
    """A smaller run through real sockets: the transport drops nothing."""
    from repro.service import HttpServer

    config = LoadgenConfig(
        seed=31,
        clients=20,
        requests_per_client=2,
        spec_pool=2,
        cpu_points=4,
        gpu_points=5,
    )

    async def main():
        service = PartitionService(store=ResultStore(tmp_path / "tcp-store"))
        async with HttpServer(service, port=0) as server:
            return await run_load(config, host=server.host, port=server.port)

    summary = asyncio.run(main())
    assert summary.requests_total == 40
    assert summary.ok == 40
    assert summary.dropped == 0
