"""Request batching: concurrent cold requests share one FPM build.

The tentpole's coalescing contract, verified through the counter
registry rather than timing: N clients racing on one cold spec must
trigger exactly one model build (one ``service.partition.built``, N-1
``service.partition.coalesced``, and per-unit ``store.miss`` /
``fpm.models_built`` counts that match a single build).  A mixed
hot/cold zipf workload must produce allocations bit-identical to the
same schedule replayed sequentially.
"""

from __future__ import annotations

import asyncio
import hashlib
import json

import pytest

from repro.service import LoadgenConfig, build_schedule, run_load
from repro.service.core import PartitionService
from repro.store import ResultStore, canonical_json

COLD_CLIENTS = 100


def test_cold_burst_coalesces_to_one_build(run_service, body):
    """100 concurrent clients, one cold spec, exactly one FPM build."""
    raw = body(total_blocks=1600.0)

    async def scenario(svc):
        responses = await asyncio.gather(
            *(svc.handle("POST", "/partition", raw) for _ in range(COLD_CLIENTS))
        )
        return responses, svc.metrics_snapshot()

    responses, metrics = run_service(scenario)
    assert [r.status for r in responses] == [200] * COLD_CLIENTS

    payloads = [r.json for r in responses]
    units = payloads[0]["units"]
    sources = sorted(p["source"] for p in payloads)
    counters = metrics["counters"]

    # exactly one leader built; everyone else awaited the same build
    assert sources.count("built") == 1
    assert sources.count("coalesced") == COLD_CLIENTS - 1
    assert counters["service.partition.built"] == 1
    assert counters["service.partition.coalesced"] == COLD_CLIENTS - 1
    assert counters["store.coalesced"] == COLD_CLIENTS - 1
    # the build hit the cold store once per unit, and built each model once
    assert counters["store.miss"] == len(units)
    assert counters["fpm.models_built"] == len(units)
    assert "store.hit" not in counters

    # every client got the same answer
    first = payloads[0]["allocation"]
    assert all(p["allocation"] == first for p in payloads)


def test_two_specs_racing_build_independently(run_service, body):
    """Coalescing is keyed per model: distinct specs never share a build."""
    cpu = body(preset="cpu_only")
    hybrid = body(preset="ig_icl")

    async def scenario(svc):
        responses = await asyncio.gather(
            *(svc.handle("POST", "/partition", cpu) for _ in range(10)),
            *(svc.handle("POST", "/partition", hybrid) for _ in range(10)),
        )
        return responses, svc.metrics_snapshot()

    responses, metrics = run_service(scenario)
    keys = {r.json["model_key"] for r in responses}
    assert len(keys) == 2
    assert metrics["counters"]["service.partition.built"] == 2
    assert metrics["counters"]["service.partition.coalesced"] == 18


def test_warm_store_skips_the_build_but_not_the_solve(tmp_path, body):
    """A second service over the same store reads models from disk."""
    store = ResultStore(tmp_path / "shared-store")
    raw = body()

    async def once():
        async with PartitionService(store=store) as svc:
            response = await svc.handle("POST", "/partition", raw)
            return response.json, svc.metrics_snapshot()["counters"]

    first_payload, first_counters = asyncio.run(once())
    second_payload, second_counters = asyncio.run(once())

    # fresh process-level caches: still a "built" source, but the store
    # answered every model read so nothing was measured again
    assert second_payload["source"] == "built"
    assert second_payload["allocation"] == first_payload["allocation"]
    assert first_counters["store.miss"] == len(first_payload["units"])
    assert second_counters["store.hit"] == len(second_payload["units"])
    assert "fpm.models_built" not in second_counters


def _sequential_digest(config: LoadgenConfig, store) -> str:
    """Replay the schedule strictly in order and digest the allocations."""
    schedule = build_schedule(config)

    async def main():
        responses = {}
        async with PartitionService(store=store) as svc:
            for client_index, requests in enumerate(schedule):
                for request_index, request in enumerate(requests):
                    raw = json.dumps(request).encode("utf-8")
                    response = await svc.handle("POST", "/partition", raw)
                    assert response.status == 200
                    payload = response.json
                    responses[f"{client_index}:{request_index}"] = {
                        "allocation": payload["allocation"],
                        "total_blocks": payload["total_blocks"],
                    }
        digest = hashlib.blake2b(digest_size=16)
        digest.update(canonical_json(responses).encode("utf-8"))
        return digest.hexdigest()

    return asyncio.run(main())


@pytest.mark.parametrize("zipf_exponent", [0.8, 1.4])
def test_concurrent_zipf_workload_matches_sequential(tmp_path, zipf_exponent):
    """Mixed hot/cold zipf traffic is bit-identical to sequential replay."""
    config = LoadgenConfig(
        seed=1905,
        clients=16,
        requests_per_client=3,
        spec_pool=4,
        zipf_exponent=zipf_exponent,
        cpu_points=4,
        gpu_points=5,
    )

    async def concurrent():
        async with PartitionService(store=ResultStore(tmp_path / "a")) as svc:
            return await run_load(config, service=svc)

    summary = asyncio.run(concurrent())
    assert summary.dropped == 0
    assert summary.ok == summary.requests_total == 48
    expected = _sequential_digest(config, ResultStore(tmp_path / "b"))
    assert summary.responses_digest == expected
    # concurrency produced coalesced/hot hits, not 48 cold builds
    assert summary.source_counts.get("built", 0) <= config.spec_pool
