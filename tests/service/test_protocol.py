"""Protocol and endpoint behaviour of the partition service.

Covers the strict-4xx contract (malformed input is always a structured
client error, never a 500), the routing surface (/partition, /healthz,
/metrics, 404, 405), the content-addressed request keys, and the raw
HTTP transport (keep-alive, framing rejects, size limits).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import __version__
from repro.platform.presets import ig_icl_node
from repro.service import ProtocolError, parse_partition_request
from repro.service.protocol import unknown_spec_fields
from repro.platform.spec import NodeSpec
from repro.util.serde import to_jsonable

from tests.service.conftest import make_body


def _error_code(response) -> str:
    payload = response.json
    assert set(payload) == {"error"}
    assert set(payload["error"]) == {"code", "message"}
    return payload["error"]["code"]


# --------------------------------------------------------------- happy path
def test_partition_returns_full_allocation(run_service, body):
    async def scenario(svc):
        return await svc.handle("POST", "/partition", body(total_blocks=900.0))

    response = run_service(scenario)
    assert response.status == 200
    payload = response.json
    assert payload["total_blocks"] == 900.0
    assert payload["strategy"] == "fpm"
    assert payload["source"] == "built"
    assert payload["units"] == sorted(payload["units"])
    assert set(payload["allocation"]) == set(payload["units"])
    assert sum(payload["allocation"].values()) == pytest.approx(900.0)
    key = payload["model_key"]
    assert len(key) == 32 and set(key) <= set("0123456789abcdef")


def test_repeated_request_is_served_hot(run_service, body):
    async def scenario(svc):
        first = await svc.handle("POST", "/partition", body())
        second = await svc.handle("POST", "/partition", body())
        return first, second

    first, second = run_service(scenario)
    assert first.json["source"] == "built"
    assert second.json["source"] == "hot"
    assert second.json["allocation"] == first.json["allocation"]


def test_same_models_different_size_is_warm(run_service, body):
    async def scenario(svc):
        first = await svc.handle("POST", "/partition", body(total_blocks=400.0))
        second = await svc.handle("POST", "/partition", body(total_blocks=900.0))
        return first, second

    first, second = run_service(scenario)
    assert first.json["source"] == "built"
    # distinct answer, same model set: model LRU hit, no rebuild
    assert second.json["source"] == "warm"
    assert second.json["model_key"] == first.json["model_key"]


def test_inline_node_spec_is_accepted(run_service):
    spec = to_jsonable(ig_icl_node())
    body = json.dumps(
        {
            "node": spec,
            "total_blocks": 400.0,
            "model": {"cpu_points": 4, "gpu_points": 5, "adaptive": False,
                      "max_blocks": 1800.0, "noise_sigma": 0.01},
        }
    ).encode()

    async def scenario(svc):
        return await svc.handle("POST", "/partition", body)

    response = run_service(scenario)
    assert response.status == 200
    assert sum(response.json["allocation"].values()) == pytest.approx(400.0)


# ----------------------------------------------------------- other endpoints
def test_healthz_reports_service_state(run_service):
    async def scenario(svc):
        return await svc.handle("GET", "/healthz")

    payload = run_service(scenario).json
    assert payload["status"] == "ok"
    assert payload["version"] == __version__
    assert payload["uptime_s"] >= 0.0
    assert payload["workers"] >= 1
    assert payload["inflight_builds"] == 0


def test_metrics_json_counts_requests(run_service, body):
    async def scenario(svc):
        await svc.handle("POST", "/partition", body())
        await svc.handle("POST", "/partition", body())
        return await svc.handle("GET", "/metrics")

    payload = run_service(scenario).json
    assert payload["counters"]["service.requests"] == 2
    assert payload["counters"]["service.status.2xx"] == 2
    assert payload["counters"]["service.partition.built"] == 1
    assert payload["counters"]["service.partition.hot"] == 1
    request_hist = payload["histograms"]["service.request_s"]
    assert request_hist["count"] == 2
    assert request_hist["p50"] > 0.0
    assert request_hist["p99"] >= request_hist["p50"]


def test_metrics_prometheus_text_format(run_service, body):
    async def scenario(svc):
        await svc.handle("POST", "/partition", body())
        return await svc.handle("GET", "/metrics?format=prometheus")

    response = run_service(scenario)
    assert response.status == 200
    assert response.content_type.startswith("text/plain")
    text = response.body.decode()
    assert "# TYPE repro_service_requests_total counter" in text
    assert "repro_service_requests_total 1" in text
    assert '# TYPE repro_service_request_s histogram' in text
    assert 'repro_service_request_s_bucket{le="+Inf"} 1' in text
    assert "repro_service_request_s_count 1" in text


def test_metrics_unknown_format_is_400(run_service):
    async def scenario(svc):
        return await svc.handle("GET", "/metrics?format=xml")

    response = run_service(scenario)
    assert response.status == 400
    assert _error_code(response) == "bad-format"


def test_unknown_route_is_404(run_service):
    async def scenario(svc):
        return await svc.handle("GET", "/nope")

    response = run_service(scenario)
    assert response.status == 404
    assert _error_code(response) == "not-found"


@pytest.mark.parametrize(
    "method, target",
    [("POST", "/healthz"), ("POST", "/metrics"), ("GET", "/partition"),
     ("DELETE", "/partition")],
)
def test_wrong_method_is_405(run_service, method, target):
    async def scenario(svc):
        return await svc.handle(method, target)

    response = run_service(scenario)
    assert response.status == 405
    assert _error_code(response) == "method-not-allowed"


# --------------------------------------------------- strict request parsing
@pytest.mark.parametrize(
    "raw, code",
    [
        (b"\xff\xfe junk", "bad-encoding"),
        (b"{not json", "bad-json"),
        (b"[1, 2, 3]", "bad-json"),
        (b'"a string"', "bad-json"),
        (b"", "bad-json"),
    ],
)
def test_unparseable_bodies(raw, code):
    with pytest.raises(ProtocolError) as excinfo:
        parse_partition_request(raw)
    assert excinfo.value.status == 400
    assert excinfo.value.code == code


def _mutated(**changes) -> bytes:
    base = {
        "preset": "cpu_only",
        "total_blocks": 400.0,
        "strategy": "fpm",
        "model": {"cpu_points": 4},
    }
    base.update(changes)
    return json.dumps({k: v for k, v in base.items() if v is not ...}).encode()


@pytest.mark.parametrize(
    "mutation, code",
    [
        ({"surprise": 1}, "unknown-field"),
        ({"preset": "no-such-preset"}, "bad-platform"),
        ({"preset": ..., }, "bad-platform"),  # neither node nor preset
        ({"node": {"name": "x"}}, "bad-platform"),  # both node and preset
        ({"node": 7, "preset": ...}, "bad-platform"),
        ({"total_blocks": ...}, "missing-field"),
        ({"total_blocks": "many"}, "bad-number"),
        ({"total_blocks": True}, "bad-number"),
        ({"total_blocks": -5}, "bad-number"),
        ({"total_blocks": 0}, "bad-number"),
        ({"total_blocks": float("inf")}, "bad-number"),
        ({"strategy": "quantum"}, "bad-strategy"),
        ({"model": []}, "bad-model-knob"),
        ({"model": {"warp_speed": 9}}, "unknown-field"),
        ({"model": {"seed": 1.5}}, "bad-model-knob"),
        ({"model": {"seed": True}}, "bad-model-knob"),
        ({"model": {"adaptive": 1}}, "bad-model-knob"),
        ({"model": {"cpu_points": "12"}}, "bad-model-knob"),
        ({"model": {"max_blocks": float("nan")}}, "bad-model-knob"),
    ],
)
def test_invalid_requests_are_structured_400s(mutation, code):
    with pytest.raises(ProtocolError) as excinfo:
        parse_partition_request(_mutated(**mutation))
    assert excinfo.value.status == 400
    assert excinfo.value.code == code


def test_nested_spec_typo_reports_dotted_path():
    spec = to_jsonable(ig_icl_node())
    spec["gpus"][0]["gpu"]["peak_glfops"] = 345.6  # the classic transposition
    del spec["gpus"][0]["gpu"]["peak_gflops"]
    unknown = unknown_spec_fields(NodeSpec, spec)
    assert unknown == ["gpus[0].gpu.peak_glfops"]
    raw = json.dumps({"node": spec, "total_blocks": 100.0}).encode()
    with pytest.raises(ProtocolError) as excinfo:
        parse_partition_request(raw)
    assert excinfo.value.code == "unknown-field"
    assert "gpus[0].gpu.peak_glfops" in excinfo.value.message


def test_model_key_ignores_size_and_strategy():
    a = parse_partition_request(_mutated())
    b = parse_partition_request(_mutated(total_blocks=1600.0, strategy="cpm"))
    c = parse_partition_request(_mutated(model={"cpu_points": 5}))
    assert a.model_key() == b.model_key()
    assert a.answer_key() != b.answer_key()
    assert a.model_key() != c.model_key()


def test_defaults_fill_missing_model_knobs():
    request = parse_partition_request(
        json.dumps({"preset": "cpu_only", "total_blocks": 10}).encode()
    )
    assert request.seed == 42
    assert request.gpu_version == 3
    assert request.adaptive is True
    assert request.strategy == "fpm"
    assert request.total_blocks == 10.0


# -------------------------------------------------------------- raw transport
def _http_request(body: bytes, target: str = "/partition",
                  method: str = "POST", extra: str = "") -> bytes:
    return (
        f"{method} {target} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n{extra}\r\n"
    ).encode() + body


async def _read_response(reader) -> tuple[int, dict[str, str], bytes]:
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", "0")))
    return status, headers, body


def test_tcp_keep_alive_serves_multiple_requests(run_server):
    async def scenario(server):
        reader, writer = await asyncio.open_connection(server.host, server.port)
        try:
            request = _http_request(make_body())
            writer.write(request + request)  # pipeline two requests
            await writer.drain()
            first = await _read_response(reader)
            second = await _read_response(reader)
            return first, second
        finally:
            writer.close()
            await writer.wait_closed()

    (status1, headers1, body1), (status2, _, body2) = run_server(scenario)
    assert status1 == status2 == 200
    assert headers1["connection"] == "keep-alive"
    assert json.loads(body1)["source"] == "built"
    assert json.loads(body2)["source"] == "hot"


def test_tcp_connection_close_is_honoured(run_server):
    async def scenario(server):
        reader, writer = await asyncio.open_connection(server.host, server.port)
        writer.write(_http_request(b"", "/healthz", "GET",
                                   extra="Connection: close\r\n"))
        await writer.drain()
        status, headers, _ = await _read_response(reader)
        trailing = await reader.read()  # server closes after the response
        writer.close()
        return status, headers, trailing

    status, headers, trailing = run_server(scenario)
    assert status == 200
    assert headers["connection"] == "close"
    assert trailing == b""


def test_tcp_garbage_request_line_is_400(run_server):
    async def scenario(server):
        reader, writer = await asyncio.open_connection(server.host, server.port)
        writer.write(b"GARBAGE\r\n\r\n")
        await writer.drain()
        status, _, body = await _read_response(reader)
        writer.close()
        return status, body

    status, body = run_server(scenario)
    assert status == 400
    assert json.loads(body)["error"]["code"] == "bad-http"


def test_tcp_oversized_body_is_413(run_server):
    async def scenario(server):
        reader, writer = await asyncio.open_connection(server.host, server.port)
        writer.write(
            b"POST /partition HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: 99999999\r\n\r\n"
        )
        await writer.drain()
        status, _, body = await _read_response(reader)
        writer.close()
        return status, body

    status, body = run_server(scenario)
    assert status == 413
    assert json.loads(body)["error"]["code"] == "too-large"


def test_tcp_bad_content_length_is_400(run_server):
    async def scenario(server):
        reader, writer = await asyncio.open_connection(server.host, server.port)
        writer.write(
            b"POST /partition HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: banana\r\n\r\n"
        )
        await writer.drain()
        status, _, _ = await _read_response(reader)
        writer.close()
        return status

    assert run_server(scenario) == 400
