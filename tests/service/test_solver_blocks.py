"""The optional ``solver`` and ``hierarchy`` request blocks.

Typed convergence knobs (``solver.tolerance``/``solver.max_iters``)
flow into :class:`repro.core.solver.SolverOptions`; the ``hierarchy``
block turns the request's platform into one node of a homogeneous
cluster and the answer into a two-level allocation.  Unknown fields
inside either block report dotted paths, bad values report per-block
codes — the same strict-4xx contract as the rest of the protocol.
"""

from __future__ import annotations

import json

import pytest

from repro.core.solver import FPM_MAX_ITERS, FPM_TOLERANCE
from repro.service import ProtocolError, parse_partition_request

from tests.service.conftest import FAST_MODEL


def _body(**extra) -> bytes:
    base = {
        "preset": "cpu_only",
        "total_blocks": 400.0,
        "strategy": "fpm",
        "model": dict(FAST_MODEL),
    }
    base.update(extra)
    return json.dumps(base).encode("utf-8")


# ------------------------------------------------------------ solver block
def test_solver_block_defaults_when_absent():
    request = parse_partition_request(_body())
    assert request.tolerance == FPM_TOLERANCE
    assert request.max_iters == FPM_MAX_ITERS
    opts = request.solver_options()
    assert opts.strategy == "fpm"
    assert opts.hierarchy is False


def test_solver_block_knobs_reach_solver_options():
    request = parse_partition_request(
        _body(solver={"tolerance": 1e-9, "max_iters": 50})
    )
    assert request.tolerance == 1e-9
    assert request.max_iters == 50
    opts = request.solver_options()
    assert opts.tolerance == 1e-9
    assert opts.max_iters == 50


def test_solver_knobs_change_the_answer_key():
    plain = parse_partition_request(_body())
    tuned = parse_partition_request(_body(solver={"tolerance": 1e-6}))
    assert plain.model_key() == tuned.model_key()  # same models
    assert plain.answer_key() != tuned.answer_key()  # different solve


@pytest.mark.parametrize(
    "block, code",
    [
        ({"tolerance": 0.0}, "bad-solver-knob"),
        ({"tolerance": -1.0}, "bad-solver-knob"),
        ({"tolerance": "tight"}, "bad-solver-knob"),
        ({"max_iters": 0}, "bad-solver-knob"),
        ({"max_iters": 2.5}, "bad-solver-knob"),
    ],
)
def test_bad_solver_knobs_are_structured_errors(block, code):
    with pytest.raises(ProtocolError) as excinfo:
        parse_partition_request(_body(solver=block))
    assert excinfo.value.code == code


def test_unknown_solver_field_reports_dotted_path():
    with pytest.raises(ProtocolError) as excinfo:
        parse_partition_request(_body(solver={"tolerence": 1e-9}))
    assert excinfo.value.code == "unknown-field"
    assert "solver.tolerence" in str(excinfo.value)


# --------------------------------------------------------- hierarchy block
def test_hierarchy_block_parses():
    request = parse_partition_request(
        _body(hierarchy={"nodes": 4, "aggregate_samples": 8})
    )
    assert request.hierarchy_nodes == 4
    assert request.aggregate_samples == 8
    opts = request.solver_options()
    assert opts.hierarchy is True
    assert opts.aggregate_samples == 8


def test_hierarchy_nodes_change_the_answer_key():
    flat = parse_partition_request(_body())
    deep = parse_partition_request(_body(hierarchy={"nodes": 2}))
    assert flat.answer_key() != deep.answer_key()


@pytest.mark.parametrize(
    "extra, code",
    [
        ({"hierarchy": {"nodes": 0}}, "bad-hierarchy-knob"),
        ({"hierarchy": {"aggregate_samples": 4}}, "bad-hierarchy-knob"),
        ({"hierarchy": {"nodes": 2, "aggregate_samples": 0}}, "bad-hierarchy-knob"),
        (
            {"hierarchy": {"nodes": 2}, "strategy": "geometric"},
            "bad-hierarchy-knob",
        ),
        (
            {"hierarchy": {"nodes": 2}, "total_blocks": 400.5},
            "bad-number",
        ),
    ],
)
def test_bad_hierarchy_blocks_are_structured_errors(extra, code):
    with pytest.raises(ProtocolError) as excinfo:
        parse_partition_request(_body(**extra))
    assert excinfo.value.code == code


def test_unknown_hierarchy_field_reports_dotted_path():
    with pytest.raises(ProtocolError) as excinfo:
        parse_partition_request(_body(hierarchy={"nodes": 2, "depth": 3}))
    assert excinfo.value.code == "unknown-field"
    assert "hierarchy.depth" in str(excinfo.value)


# ----------------------------------------------------------- end to end
def test_hierarchical_request_returns_two_level_answer(run_service):
    async def scenario(svc):
        return await svc.handle(
            "POST",
            "/partition",
            _body(hierarchy={"nodes": 2, "aggregate_samples": 6}),
        )

    response = run_service(scenario)
    assert response.status == 200
    payload = response.json
    assert payload["nodes"] == 2
    assert len(payload["node_allocations"]) == 2
    assert sum(payload["node_allocations"]) == 400
    # per-unit keys are namespaced by node
    assert all(key.startswith("node") for key in payload["allocation"])
    assert sum(payload["allocation"].values()) == pytest.approx(400.0)


def test_flat_request_carries_no_hierarchy_fields(run_service):
    async def scenario(svc):
        return await svc.handle("POST", "/partition", _body())

    response = run_service(scenario)
    assert response.status == 200
    assert "nodes" not in response.json
    assert "node_allocations" not in response.json


def test_solver_block_round_trips_through_the_service(run_service):
    async def scenario(svc):
        loose = await svc.handle(
            "POST", "/partition", _body(solver={"tolerance": 1e-3})
        )
        tight = await svc.handle(
            "POST", "/partition", _body(solver={"tolerance": 1e-12})
        )
        return loose, tight

    loose, tight = run_service(scenario)
    assert loose.status == tight.status == 200
    # both are fresh solves (different answer keys), not cache hits
    assert loose.json["source"] == "built"
    assert tight.json["source"] in {"built", "warm"}
    assert sum(tight.json["allocation"].values()) == pytest.approx(400.0)
