"""The ``drift`` request block: drifted solves and their strict 4xxs."""

from __future__ import annotations

import json

import pytest

from tests.service.conftest import FAST_MODEL, make_body


def _error_code(response) -> str:
    payload = response.json
    assert set(payload) == {"error"}
    return payload["error"]["code"]


def _drift_body(
    spec: str,
    at_s: float = 30.0,
    preset: str = "ig_icl",
    total_blocks: float = 400.0,
    **extra,
) -> bytes:
    return json.dumps(
        {
            "preset": preset,
            "total_blocks": total_blocks,
            "strategy": "fpm",
            "model": FAST_MODEL,
            "drift": {"spec": spec, "at_s": at_s, **extra},
        }
    ).encode("utf-8")


THROTTLE = "throttle:GTX680:t0=2,tau=0,floor=0.5"


# --------------------------------------------------------------- happy path
def test_drifted_answer_shifts_work_off_the_throttled_gpu(run_service):
    async def scenario(svc):
        steady = await svc.handle(
            "POST", "/partition", make_body(preset="ig_icl")
        )
        drifted = await svc.handle("POST", "/partition", _drift_body(THROTTLE))
        return steady, drifted

    steady, drifted = run_service(scenario)
    assert steady.status == 200 and drifted.status == 200
    payload = drifted.json
    assert payload["drift"]["spec"] == THROTTLE
    assert payload["drift"]["at_s"] == 30.0
    gtx = "GeForce GTX680"
    assert payload["drift"]["multipliers"][gtx] == 0.5
    assert all(
        m == 1.0
        for name, m in payload["drift"]["multipliers"].items()
        if name != gtx
    )
    # the halved GPU gets fewer blocks; the workload total is conserved
    assert payload["allocation"][gtx] < steady.json["allocation"][gtx]
    assert sum(payload["allocation"].values()) == pytest.approx(400.0)
    # drift scales the solve, not the build: one model set serves both
    assert payload["model_key"] == steady.json["model_key"]


def test_drift_before_onset_matches_the_stationary_answer(run_service):
    async def scenario(svc):
        steady = await svc.handle(
            "POST", "/partition", make_body(preset="ig_icl")
        )
        early = await svc.handle(
            "POST", "/partition", _drift_body(THROTTLE, at_s=1.0)
        )
        return steady, early

    steady, early = run_service(scenario)
    assert all(m == 1.0 for m in early.json["drift"]["multipliers"].values())
    assert early.json["allocation"] == steady.json["allocation"]


def test_drifted_answers_are_cached_by_their_own_key(run_service):
    async def scenario(svc):
        first = await svc.handle("POST", "/partition", _drift_body(THROTTLE))
        again = await svc.handle("POST", "/partition", _drift_body(THROTTLE))
        other_t = await svc.handle(
            "POST", "/partition", _drift_body(THROTTLE, at_s=1.0)
        )
        return first, again, other_t

    first, again, other_t = run_service(scenario)
    assert first.json["source"] == "built"
    assert again.json["source"] == "hot"
    assert again.json["allocation"] == first.json["allocation"]
    # a different at_s is a different answer, never a stale hot hit
    assert other_t.json["source"] != "hot"


def test_drifted_solve_does_not_poison_the_warm_chain(run_service):
    # A stationary answer served after a drifted one must equal the
    # stationary answer of a fresh service: the drift-scaled solver
    # state must never seed the warm-resolve cache.
    async def drift_then_steady(svc):
        await svc.handle("POST", "/partition", _drift_body(THROTTLE))
        return await svc.handle(
            "POST", "/partition", make_body(preset="ig_icl", total_blocks=900.0)
        )

    async def steady_only(svc):
        return await svc.handle(
            "POST", "/partition", make_body(preset="ig_icl", total_blocks=900.0)
        )

    after_drift = run_service(drift_then_steady)
    fresh = run_service(steady_only)
    assert after_drift.json["allocation"] == fresh.json["allocation"]
    assert "drift" not in after_drift.json


# ------------------------------------------------------------- strict 4xxs
@pytest.mark.parametrize(
    "drift_block, code",
    [
        ({}, "bad-drift-knob"),  # spec is required
        ({"spec": 7}, "bad-drift-knob"),
        ({"spec": "throttle:GTX680:tau=1"}, "bad-drift-knob"),  # t0 missing
        ({"spec": "warp:GTX680:t0=1"}, "bad-drift-knob"),
        ({"spec": THROTTLE, "at_s": -1.0}, "bad-drift-knob"),
        ({"spec": THROTTLE, "at_s": "soon"}, "bad-drift-knob"),
        ({"spec": THROTTLE, "seed": 1.5}, "bad-drift-knob"),
        ({"spec": THROTTLE, "tempo": 3}, "unknown-field"),
        ("throttle", "bad-drift-knob"),  # block must be an object
    ],
)
def test_bad_drift_blocks_are_structured_400s(run_service, drift_block, code):
    body = json.dumps(
        {
            "preset": "cpu_only",
            "total_blocks": 400.0,
            "model": FAST_MODEL,
            "drift": drift_block,
        }
    ).encode("utf-8")

    async def scenario(svc):
        return await svc.handle("POST", "/partition", body)

    response = run_service(scenario)
    assert response.status == 400
    assert _error_code(response) == code


def test_drift_with_hierarchy_is_rejected(run_service):
    body = json.dumps(
        {
            "preset": "cpu_only",
            "total_blocks": 400.0,
            "model": FAST_MODEL,
            "hierarchy": {"nodes": 4},
            "drift": {"spec": "jitter:*:sigma=0.1"},
        }
    ).encode("utf-8")

    async def scenario(svc):
        return await svc.handle("POST", "/partition", body)

    response = run_service(scenario)
    assert response.status == 400
    assert _error_code(response) == "bad-drift-knob"
