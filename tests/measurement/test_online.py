"""Unit tests for online partial-FPM building."""

import pytest

from repro.measurement.online import (
    PartialFpmBuilder,
    online_partition,
)


def make_builder(bench, name="s6"):
    kernel = bench.socket_kernel(2, 6)
    return PartialFpmBuilder(bench=bench, kernel=kernel, name=name)


class TestPartialFpmBuilder:
    def test_bootstrap_two_points(self, quiet_bench):
        b = make_builder(quiet_bench)
        b.bootstrap(10.0, 1000.0)
        assert b.num_samples == 2
        assert b.repetitions_spent >= 10

    def test_model_requires_samples(self, quiet_bench):
        with pytest.raises(ValueError, match="no samples"):
            make_builder(quiet_bench).model()

    def test_refine_adds_point(self, quiet_bench):
        b = make_builder(quiet_bench)
        b.bootstrap(10.0, 1000.0)
        assert b.refine_at(300.0)
        assert b.num_samples == 3

    def test_refine_skips_nearby(self, quiet_bench):
        b = make_builder(quiet_bench)
        b.bootstrap(10.0, 1000.0)
        b.refine_at(300.0)
        assert not b.refine_at(305.0)  # within min_spacing
        assert b.num_samples == 3

    def test_model_reflects_device(self, quiet_bench):
        b = make_builder(quiet_bench)
        b.bootstrap(10.0, 1000.0)
        b.refine_at(400.0)
        model = b.model()
        direct = quiet_bench.measure_speed(b.kernel, 400.0).speed_gflops
        assert model.speed(400.0) == pytest.approx(direct, rel=0.02)

    def test_bootstrap_validation(self, quiet_bench):
        b = make_builder(quiet_bench)
        with pytest.raises(ValueError):
            b.bootstrap(100.0, 100.0)


class TestOnlinePartition:
    def test_converges_on_node_units(self, quiet_bench):
        builders = [
            PartialFpmBuilder(
                bench=quiet_bench,
                kernel=quiet_bench.gpu_kernel(1, 3),
                name="gtx",
            ),
            PartialFpmBuilder(
                bench=quiet_bench,
                kernel=quiet_bench.socket_kernel(2, 6),
                name="s6",
            ),
        ]
        result = online_partition(builders, 3600)
        assert result.converged
        assert sum(result.allocations) == 3600
        # GPU dominates but out-of-core limits its edge
        assert result.allocations[0] > result.allocations[1]

    def test_matches_direct_partition(self, quiet_bench):
        """The online loop lands near the exact device-model partition."""
        from repro.core.partition import partition_fpm
        from repro.core.speed_function import SpeedFunction
        from repro.kernels.interface import kernel_speed_gflops

        gtx = quiet_bench.gpu_kernel(1, 3)
        s6 = quiet_bench.socket_kernel(2, 6)
        builders = [
            PartialFpmBuilder(bench=quiet_bench, kernel=gtx, name="g"),
            PartialFpmBuilder(bench=quiet_bench, kernel=s6, name="s"),
        ]
        result = online_partition(builders, 3600)
        # dense reference model straight from the devices
        sizes = [10, 50, 150, 400, 800, 1100, 1300, 1800, 2600, 3600]
        ref_models = [
            SpeedFunction.from_points(
                sizes, [kernel_speed_gflops(k, x) for x in sizes]
            ).with_monotonic_time()
            for k in (gtx, s6)
        ]
        reference = partition_fpm(ref_models, 3600.0)
        for got, want in zip(result.allocations, reference):
            assert abs(got - want) / 3600.0 < 0.06

    def test_measurement_cost_tracked(self, quiet_bench):
        builders = [
            PartialFpmBuilder(
                bench=quiet_bench,
                kernel=quiet_bench.socket_kernel(0, 5),
                name="s5",
            )
        ]
        result = online_partition(builders, 400)
        assert result.repetitions_spent == builders[0].repetitions_spent
        assert result.repetitions_spent > 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            online_partition([], 100)

    def test_round_history_recorded(self, quiet_bench):
        builders = [
            PartialFpmBuilder(
                bench=quiet_bench,
                kernel=quiet_bench.socket_kernel(2, 6),
                name="s6",
            ),
            PartialFpmBuilder(
                bench=quiet_bench,
                kernel=quiet_bench.socket_kernel(0, 5),
                name="s5",
            ),
        ]
        result = online_partition(builders, 1000)
        assert result.num_rounds >= 2
        for rnd in result.rounds:
            assert sum(rnd.allocations) == 1000
