"""Unit tests for FPM construction from benchmark sweeps."""

import math

import pytest

from repro.kernels.gemm_gpu import InCoreGpuGemmKernel
from repro.measurement.fpm_builder import FpmBuilder, SizeGrid


class TestSizeGrid:
    def test_linear(self):
        g = SizeGrid.linear(10, 50, 5)
        assert g.sizes == (10, 20, 30, 40, 50)

    def test_geometric(self):
        g = SizeGrid.geometric(1, 16, 5)
        assert g.sizes == pytest.approx((1, 2, 4, 8, 16))

    def test_single_point(self):
        assert SizeGrid.linear(10, 50, 1).sizes == (10,)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            SizeGrid.linear(50, 10, 3)

    def test_clamped(self):
        g = SizeGrid.linear(10, 100, 10).clamped(45)
        assert max(g.sizes) <= 45

    def test_clamped_rejects_empty(self):
        with pytest.raises(ValueError):
            SizeGrid.linear(50, 100, 3).clamped(10)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            SizeGrid((3.0, 2.0))


class TestFpmBuilder:
    def test_builds_model_over_grid(self, quiet_bench):
        builder = FpmBuilder(quiet_bench)
        kernel = quiet_bench.socket_kernel(2, 6)
        model = builder.build(kernel, SizeGrid.linear(50, 1000, 6))
        assert len(model.speed_function) == 6
        assert model.kernel_name == kernel.name
        assert model.repetitions_total >= 6 * 5

    def test_model_matches_device_speeds(self, quiet_bench):
        builder = FpmBuilder(quiet_bench)
        kernel = quiet_bench.socket_kernel(2, 6)
        model = builder.build(kernel, SizeGrid.linear(50, 1000, 6))
        direct = quiet_bench.measure_speed(kernel, 500).speed_gflops
        assert model.speed(500) == pytest.approx(direct, rel=0.02)

    def test_bounded_kernel_clamps_grid_and_flags_model(self, quiet_bench):
        kernel = InCoreGpuGemmKernel(gpu=quiet_bench.gpus[1])
        builder = FpmBuilder(quiet_bench)
        model = builder.build(kernel, SizeGrid.linear(100, 5000, 10))
        assert model.bounded
        assert model.max_size <= kernel.memory_limit_blocks

    def test_adaptive_adds_points_at_the_cliff(self, quiet_bench):
        """The GPU's memory-limit cliff attracts adaptive refinement."""
        builder = FpmBuilder(quiet_bench, adaptive_tolerance=0.05)
        kernel = quiet_bench.gpu_kernel(1, 2)
        coarse = builder.build(kernel, SizeGrid.linear(200, 3000, 5))
        refined = builder.build(
            kernel, SizeGrid.linear(200, 3000, 5), adaptive=True
        )
        assert len(refined.speed_function) > len(coarse.speed_function)
        limit = kernel.memory_limit_blocks
        near_cliff = [
            s.size
            for s in refined.speed_function.samples
            if 0.7 * limit < s.size < 1.5 * limit
        ]
        assert len(near_cliff) >= 2

    def test_adaptive_skips_flat_regions(self, quiet_bench):
        """A nearly flat socket curve needs few extra points."""
        builder = FpmBuilder(quiet_bench, adaptive_tolerance=0.05)
        kernel = quiet_bench.socket_kernel(2, 6)
        model = builder.build(
            kernel, SizeGrid.linear(300, 900, 4), adaptive=True
        )
        # one refinement round measures the 3 midpoints; flatness stops there
        assert len(model.speed_function) <= 4 + 3

    def test_custom_name(self, quiet_bench):
        builder = FpmBuilder(quiet_bench)
        model = builder.build(
            quiet_bench.socket_kernel(0, 5),
            SizeGrid.linear(100, 200, 2),
            name="socket0:c5",
        )
        assert model.name == "socket0:c5"
