"""Failure injection: the measurement stack under timing outliers.

Real benchmark runs occasionally catch an OS hiccup that stretches one
timing by an order of magnitude.  These tests inject such spikes and check
what the Section III protocol does about them: flag the affected
measurements as unreliable, spend more repetitions, and — the end-to-end
criterion — still produce a partition whose *true* balance is close to the
clean platform's.
"""

import pytest

from repro.app.matmul import HybridMatMul, PartitioningStrategy
from repro.measurement.reliability import ReliabilityCriterion
from repro.platform.noise import NoiseModel
from repro.platform.presets import ig_icl_node
from repro.util.rng import RngStream


class TestNoiseModelOutliers:
    def test_outliers_occur_at_configured_rate(self):
        noise = NoiseModel(
            RngStream(1), sigma=0.0, outlier_prob=0.1, outlier_factor=10.0
        )
        values = [noise.perturb(1.0, "k", i) for i in range(2000)]
        spikes = sum(1 for v in values if v > 5.0)
        assert 120 <= spikes <= 280  # ~10% +/- sampling noise

    def test_outliers_reproducible(self):
        a = NoiseModel(RngStream(2), sigma=0.01, outlier_prob=0.05)
        b = NoiseModel(RngStream(2), sigma=0.01, outlier_prob=0.05)
        assert [a.perturb(1.0, i) for i in range(50)] == [
            b.perturb(1.0, i) for i in range(50)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(RngStream(1), outlier_prob=1.5)
        with pytest.raises(ValueError):
            NoiseModel(RngStream(1), outlier_factor=0.5)


class TestReliabilityUnderOutliers:
    def _bench_with_outliers(self, prob):
        from repro.measurement.benchmark import HybridBenchmark

        bench = HybridBenchmark(
            ig_icl_node(),
            seed=5,
            noise_sigma=0.02,
        )
        bench.timer.noise = NoiseModel(
            RngStream(5).child("bench"),
            sigma=0.02,
            outlier_prob=prob,
            outlier_factor=10.0,
        )
        return bench

    def test_spikes_trigger_more_repetitions(self):
        clean = self._bench_with_outliers(0.0)
        dirty = self._bench_with_outliers(0.08)
        kernel_c = clean.socket_kernel(2, 6)
        kernel_d = dirty.socket_kernel(2, 6)
        m_clean = clean.measure_time(kernel_c, 500.0)
        m_dirty = dirty.measure_time(kernel_d, 500.0)
        assert m_dirty.repetitions > m_clean.repetitions

    def test_heavy_spikes_flagged_unreliable(self):
        bench = self._bench_with_outliers(0.3)
        bench.criterion = ReliabilityCriterion(
            rel_err=0.01, min_repetitions=5, max_repetitions=20
        )
        m = bench.measure_time(bench.socket_kernel(2, 6), 500.0)
        assert not m.reliable
        assert m.rel_precision > 0.01


class TestEndToEndRobustness:
    def test_partition_survives_moderate_outliers(self):
        """Models built under 2% spike probability still balance well."""
        clean_app = HybridMatMul(ig_icl_node(), seed=5, noise_sigma=0.0)
        clean_app.build_models(
            max_blocks=4000.0, cpu_points=8, gpu_points=10, adaptive=False
        )
        clean_plan = clean_app.plan(60, PartitioningStrategy.FPM)

        dirty_app = HybridMatMul(ig_icl_node(), seed=5, noise_sigma=0.02)
        dirty_app.bench.timer.noise = NoiseModel(
            RngStream(5).child("bench"),
            sigma=0.02,
            outlier_prob=0.02,
            outlier_factor=8.0,
        )
        dirty_app.build_models(
            max_blocks=4000.0, cpu_points=8, gpu_points=10, adaptive=False
        )
        dirty_plan = dirty_app.plan(60, PartitioningStrategy.FPM)

        total = 3600
        l1 = sum(
            abs(a - b)
            for a, b in zip(
                clean_plan.unit_allocations, dirty_plan.unit_allocations
            )
        )
        # outlier-polluted models shift the distribution only mildly
        assert l1 / total < 0.15
        # and the dirty plan executed on the true platform stays usable
        result = clean_app.execute(dirty_plan)
        baseline = clean_app.execute(clean_plan)
        assert result.total_time < baseline.total_time * 1.2
