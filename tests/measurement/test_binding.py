"""Unit tests for process binding plans."""

import pytest

from repro.measurement.binding import (
    BindingPlan,
    ProcessBinding,
    default_binding,
)


class TestDefaultBinding:
    def test_one_process_per_core(self, node):
        plan = default_binding(node)
        assert plan.num_processes == node.total_cores

    def test_dedicated_count_matches_gpus(self, node):
        plan = default_binding(node)
        assert len(plan.dedicated_ranks()) == len(node.gpus)

    def test_papers_rank_layout(self, node):
        """Fig. 6: ranks 0 and 6 drive the C870 and the GTX680."""
        plan = default_binding(node)
        assert plan.dedicated_ranks() == [0, 6]

    def test_cpu_ranks_complement_dedicated(self, node):
        plan = default_binding(node)
        cpu = set(plan.cpu_ranks())
        dedicated = set(plan.dedicated_ranks())
        assert cpu | dedicated == set(range(plan.num_processes))
        assert not cpu & dedicated

    def test_cpu_ranks_on_gpu_socket(self, node):
        plan = default_binding(node)
        # socket 0 hosts the C870: 5 CPU ranks
        assert len(plan.cpu_ranks_on_socket(0)) == 5
        # socket 2 is CPU-only: 6 ranks
        assert len(plan.cpu_ranks_on_socket(2)) == 6

    def test_binding_of(self, node):
        plan = default_binding(node)
        b = plan.binding_of(0)
        assert b.is_dedicated
        assert b.socket_index == 0
        with pytest.raises(KeyError):
            plan.binding_of(999)

    def test_cpu_only_node(self, cpu_node):
        plan = default_binding(cpu_node)
        assert plan.dedicated_ranks() == []
        assert len(plan.cpu_ranks()) == 24


class TestValidation:
    def test_rejects_double_booked_core(self, node):
        bindings = (
            ProcessBinding(rank=0, socket_index=0, core_index=0),
            ProcessBinding(rank=1, socket_index=0, core_index=0),
        )
        with pytest.raises(ValueError, match="two processes"):
            BindingPlan(node=node, bindings=bindings)

    def test_rejects_out_of_range_socket(self, node):
        bindings = (ProcessBinding(rank=0, socket_index=9, core_index=0),)
        with pytest.raises(ValueError, match="socket"):
            BindingPlan(node=node, bindings=bindings)

    def test_rejects_out_of_range_core(self, node):
        bindings = (ProcessBinding(rank=0, socket_index=0, core_index=10),)
        with pytest.raises(ValueError, match="core"):
            BindingPlan(node=node, bindings=bindings)
