"""Golden equivalence: the vectorised measurement engine vs the scalar oracle.

``measure_until_reliable`` (one sample() call per repetition) is kept as the
reference implementation; every fast path built on the batch engine must be
bit-identical to it — same floats, same repetition counts, same error
messages, same observability counter totals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.measurement.benchmark import HybridBenchmark
from repro.measurement.fpm_builder import FpmBuilder, SizeGrid
from repro.measurement.reliability import (
    ReliabilityCriterion,
    measure_until_reliable,
    measure_until_reliable_batch,
)
from repro.obs import Tracer, use_tracer
from repro.platform.faults import FaultPlan, KernelFaultError, RetryPolicy
from repro.platform.noise import NoiseModel
from repro.util.rng import RngStream

SIZES = (12.0, 40.0, 130.0, 700.0, 2500.0)


@pytest.fixture(scope="module")
def bench(node):
    return HybridBenchmark(node)


def _kernels(bench):
    return [
        (bench.socket_kernel(0, 5), 0),
        (bench.socket_kernel(0, 6, gpu_active=True), 0),
        (bench.gpu_kernel(0, 1), 0),
        (bench.gpu_kernel(1, 2), 3),
        (bench.gpu_kernel(1, 3), 5),
    ]


class TestKernelBatch:
    def test_run_time_batch_matches_scalar(self, bench):
        for kernel, busy in _kernels(bench):
            batch = kernel.run_time_batch(np.asarray(SIZES), busy)
            for size, value in zip(SIZES, batch):
                assert float(value) == kernel.run_time(size, busy)

    def test_rejects_negative_area(self, bench):
        kernel = bench.socket_kernel(0, 5)
        with pytest.raises(ValueError, match="area_blocks"):
            kernel.run_time_batch([12.0, -1.0])

    def test_rejects_non_1d_batch(self, bench):
        kernel = bench.socket_kernel(0, 5)
        with pytest.raises(ValueError, match="1-D"):
            kernel.run_time_batch(np.ones((2, 2)))


class TestMeasureSpeedsBatch:
    def test_bit_identical_to_scalar_loop(self, bench):
        for kernel, busy in _kernels(bench):
            batch = bench.measure_speeds(kernel, SIZES, busy)
            for size, got in zip(SIZES, batch):
                want = bench.measure_speed(kernel, size, busy)
                assert got.area_blocks == want.area_blocks
                assert got.speed_gflops == want.speed_gflops
                assert got.timing == want.timing

    def test_counter_totals_match_scalar_path(self, bench):
        kernel = bench.socket_kernel(0, 5)
        scalar_tracer = Tracer()
        with use_tracer(scalar_tracer):
            for size in SIZES:
                bench.measure_speed(kernel, size)
        batch_tracer = Tracer()
        with use_tracer(batch_tracer):
            bench.measure_speeds(kernel, SIZES)
        for name in ("measure.samples.accepted", "measure.samples.rejected"):
            assert (
                batch_tracer.counter(name).value
                == scalar_tracer.counter(name).value
            )


class TestReliabilityBatch:
    def test_negative_timing_message_matches_scalar(self):
        values = [1.0, 2.0, 1.5, -1.0, 1.0]
        criterion = ReliabilityCriterion(
            rel_err=1e-9, min_repetitions=2, max_repetitions=5
        )
        with pytest.raises(ValueError, match="negative timing -1.0 from repetition 3"):
            measure_until_reliable(lambda rep: values[rep], criterion)
        with pytest.raises(ValueError, match="negative timing -1.0 from repetition 3"):
            measure_until_reliable_batch(
                lambda start, count: np.asarray(values[start : start + count]),
                criterion,
            )

    def test_negative_after_stop_never_sampled_by_scalar(self):
        # the scalar loop stops at repetition 2 and never sees the negative;
        # the batch path draws it (chunks are prefetched) but must not raise
        values = [1.0, 1.0, -1.0, -1.0]
        criterion = ReliabilityCriterion(
            rel_err=0.5, min_repetitions=2, max_repetitions=4
        )
        scalar = measure_until_reliable(lambda rep: values[rep], criterion)
        batch = measure_until_reliable_batch(
            lambda start, count: np.asarray(values[start : start + count]),
            criterion,
        )
        assert batch == scalar
        assert batch.repetitions == 2

    def test_budget_exhaustion_identical(self):
        noise = NoiseModel(RngStream(7).child("bench"), 0.8)
        criterion = ReliabilityCriterion(
            rel_err=0.001, min_repetitions=5, max_repetitions=37
        )
        scalar = measure_until_reliable(
            lambda rep: noise.perturb(1.0, "k", f"r{rep}"), criterion
        )
        batch = measure_until_reliable_batch(
            lambda start, count: noise.perturb_batch(
                1.0, ("k",), [f"r{r}" for r in range(start, start + count)]
            ),
            criterion,
        )
        assert batch == scalar
        assert not batch.reliable
        assert batch.repetitions == 37


class TestFaultInjectedEquivalence:
    """The fault layer must not fork the scalar/batch equivalence."""

    def _faulty_bench(self, node, spec="fail:*:p=0.1,code=13; spike:*:p=0.1,x=6"):
        # a generous retry budget: exhaustion (p^(1+retries) per rep) would
        # abort the measurement, which is its own test below
        return HybridBenchmark(
            node,
            seed=31,
            noise_sigma=0.01,
            faults=FaultPlan.from_spec(spec, seed=31),
            retry=RetryPolicy(max_retries=6),
        )

    def test_bit_identical_under_faults(self, node):
        bench = self._faulty_bench(node)
        for kernel, busy in _kernels(bench):
            batch = bench.measure_speeds(kernel, SIZES, busy)
            for size, got in zip(SIZES, batch):
                want = bench.measure_speed(kernel, size, busy)
                assert got.area_blocks == want.area_blocks
                assert got.speed_gflops == want.speed_gflops
                assert got.timing == want.timing

    def test_fault_counter_totals_match_scalar_path(self, node):
        bench = self._faulty_bench(node)
        kernel = bench.socket_kernel(0, 5)
        scalar_tracer = Tracer()
        with use_tracer(scalar_tracer):
            for size in SIZES:
                bench.measure_speed(kernel, size)
        batch_tracer = Tracer()
        with use_tracer(batch_tracer):
            bench.measure_speeds(kernel, SIZES)
        scalar = scalar_tracer.metrics.snapshot()
        batch = batch_tracer.metrics.snapshot()
        assert scalar.get("measure.faults", 0) > 0  # the spec actually fired
        for name in (
            "measure.faults",
            "measure.retries",
            "measure.samples.accepted",
            "measure.samples.rejected",
        ):
            assert batch.get(name, 0) == scalar.get(name, 0), name

    def test_exhaustion_messages_identical(self, node):
        # p=1: every attempt fails, both paths give up with the same error
        bench = self._faulty_bench(node, spec="fail:*:p=1,code=13")
        kernel = bench.socket_kernel(0, 5)
        with pytest.raises(KernelFaultError) as scalar_err:
            bench.measure_time(kernel, 50.0)
        with pytest.raises(KernelFaultError) as batch_err:
            bench.measure_times(kernel, [50.0])
        assert str(scalar_err.value) == str(batch_err.value)
        assert "error code 13" in str(scalar_err.value)
        # the final attempt index is the retry budget
        assert f"a{bench.retry.max_retries}" in str(scalar_err.value)

    def test_inert_plan_matches_no_plan(self, node):
        clean = HybridBenchmark(node, seed=31, noise_sigma=0.01)
        inert = HybridBenchmark(
            node,
            seed=31,
            noise_sigma=0.01,
            faults=FaultPlan.from_spec("", seed=31),
        )
        kernel_c = clean.socket_kernel(1, 6)
        kernel_i = inert.socket_kernel(1, 6)
        for size in SIZES:
            assert clean.measure_speed(kernel_c, size) == inert.measure_speed(
                kernel_i, size
            )

    def test_fault_free_runs_have_no_fault_counters(self, node):
        # the fault layer installed-but-disabled must not pollute metrics
        bench = HybridBenchmark(node, seed=31, noise_sigma=0.01)
        tracer = Tracer()
        with use_tracer(tracer):
            bench.measure_speed(bench.socket_kernel(0, 5), 40.0)
        snapshot = tracer.metrics.snapshot()
        assert "measure.faults" not in snapshot
        assert "measure.retries" not in snapshot

    def test_retry_recovers_and_costs_repetitions(self):
        # rep 1 fails on attempts 0-1 and succeeds on attempt 2
        calls = []

        def sample(rep, attempt=0):
            calls.append((rep, attempt))
            if rep == 1 and attempt < 2:
                raise KernelFaultError("dev", 9, (f"r{rep}", f"a{attempt}"))
            return 1.0

        criterion = ReliabilityCriterion(
            rel_err=0.5, min_repetitions=3, max_repetitions=3
        )
        retry = RetryPolicy(max_retries=3)
        result = measure_until_reliable(sample, criterion, retry=retry)
        assert result.repetitions == 3
        assert (1, 0) in calls and (1, 1) in calls and (1, 2) in calls

    def test_no_retry_policy_propagates_first_failure(self):
        def sample(rep, attempt=0):
            raise KernelFaultError("dev", 9, (f"r{rep}", f"a{attempt}"))

        criterion = ReliabilityCriterion(
            rel_err=0.5, min_repetitions=1, max_repetitions=2
        )
        with pytest.raises(KernelFaultError, match="r0/a0"):
            measure_until_reliable(sample, criterion)


class TestFpmBuilderBatch:
    def test_adaptive_build_counters_consistent(self, bench):
        grid = SizeGrid.geometric(12.0, 3000.0, 8)
        kernel = bench.gpu_kernel(1, 3)
        tracer = Tracer()
        with use_tracer(tracer):
            model = FpmBuilder(bench).build(kernel, grid, adaptive=True)
        samples = model.speed_function.samples
        assert tracer.counter("fpm.samples").value == len(samples)
        assert tracer.counter("fpm.adaptive.points").value == len(samples) - len(
            grid.sizes
        )

    def test_build_matches_scalar_speeds(self, bench):
        grid = SizeGrid.linear(12.0, 1200.0, 6)
        kernel = bench.socket_kernel(2, 6)
        model = FpmBuilder(bench).build(kernel, grid)
        for sample in model.speed_function.samples:
            want = bench.measure_speed(kernel, sample.size)
            assert sample.speed == want.speed_gflops
            assert sample.rel_precision == want.timing.rel_precision
