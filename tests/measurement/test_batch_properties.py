"""Property tests: the batch measurement engine is bit-identical (hypothesis).

The vectorised fast path (``perturb_batch``, ``measure_until_reliable_batch``,
``run_time_batch``) must return the EXACT floats of the scalar oracle for any
noise level, outlier rate, stopping criterion and problem size — not merely
close ones: FPM tables are cached content-addressed, so a single differing
bit forks the artifact store.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.measurement.benchmark import HybridBenchmark
from repro.measurement.reliability import (
    ReliabilityCriterion,
    measure_until_reliable,
    measure_until_reliable_batch,
)
from repro.platform.noise import NoiseModel
from repro.platform.presets import ig_icl_node
from repro.util.rng import RngStream

pytestmark = pytest.mark.property

seeds = st.integers(min_value=0, max_value=2**32 - 1)
sigmas = st.floats(min_value=0.0, max_value=0.5)
outlier_probs = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def criteria(draw):
    min_reps = draw(st.integers(min_value=1, max_value=12))
    return ReliabilityCriterion(
        rel_err=draw(st.floats(min_value=0.005, max_value=0.5)),
        confidence=draw(st.sampled_from([0.9, 0.95, 0.99])),
        min_repetitions=min_reps,
        max_repetitions=min_reps + draw(st.integers(min_value=0, max_value=60)),
    )


@given(
    seeds,
    sigmas,
    outlier_probs,
    st.floats(min_value=0.0, max_value=10.0),
    st.integers(min_value=1, max_value=40),
)
def test_perturb_batch_matches_scalar(seed, sigma, outlier_prob, seconds, n):
    noise = NoiseModel(
        RngStream(seed).child("bench"), sigma, outlier_prob=outlier_prob
    )
    keys = [f"r{i}" for i in range(n)]
    batch = noise.perturb_batch(seconds, ("kernel", "x12.0", "busy0"), keys)
    assert batch.shape == (n,)
    for value, key in zip(batch, keys):
        assert float(value) == noise.perturb(
            seconds, "kernel", "x12.0", "busy0", key
        )


@given(
    seeds,
    sigmas,
    outlier_probs,
    st.floats(min_value=1e-6, max_value=5.0),
    criteria(),
)
def test_reliability_batch_matches_scalar(
    seed, sigma, outlier_prob, seconds, criterion
):
    noise = NoiseModel(
        RngStream(seed).child("bench"), sigma, outlier_prob=outlier_prob
    )
    scalar = measure_until_reliable(
        lambda rep: noise.perturb(seconds, "kernel", f"r{rep}"), criterion
    )
    batch = measure_until_reliable_batch(
        lambda start, count: noise.perturb_batch(
            seconds, ("kernel",), [f"r{r}" for r in range(start, start + count)]
        ),
        criterion,
    )
    # frozen-dataclass equality: mean, std, repetitions, rel_precision and
    # the reliable flag must all be EXACTLY equal
    assert batch == scalar


_BENCH: list[HybridBenchmark] = []


def _bench() -> HybridBenchmark:
    if not _BENCH:
        _BENCH.append(HybridBenchmark(ig_icl_node()))
    return _BENCH[0]


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=6000.0), min_size=1, max_size=8
    ),
    st.integers(min_value=0, max_value=5),
)
def test_cpu_run_time_batch_matches_scalar(areas, busy):
    kernel = _bench().socket_kernel(0, 5)
    batch = kernel.run_time_batch(areas, busy)
    for area, value in zip(areas, batch):
        assert float(value) == kernel.run_time(area, busy)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=6000.0), min_size=1, max_size=8
    ),
    st.integers(min_value=0, max_value=5),
)
def test_gpu_v3_run_time_batch_matches_scalar(areas, busy):
    kernel = _bench().gpu_kernel(0, 3)
    batch = kernel.run_time_batch(areas, busy)
    for area, value in zip(areas, batch):
        assert float(value) == kernel.run_time(area, busy)
