"""End-to-end determinism: same seed => bit-identical FPM tables.

This is the property REP001 exists to protect (ISSUE 1 satellite): the
whole measurement pipeline — noise draws, reliability repetitions,
adaptive grid refinement — must be a pure function of the experiment
seed, with no hidden wall-clock or unseeded-RNG dependence.
"""

from __future__ import annotations

from repro.app.matmul import HybridMatMul
from repro.app.verify import verify_partition_numerically
from repro.core.geometry import column_based_partition
from repro.platform.presets import ig_icl_node


def _build_tables(seed: int):
    app = HybridMatMul(ig_icl_node(), seed=seed, noise_sigma=0.02)
    models = app.build_models(
        max_blocks=900.0, cpu_points=5, gpu_points=6, adaptive=True
    )
    return {
        name: tuple(
            (sample.size, sample.speed)
            for sample in model.speed_function.samples
        )
        for name, model in models.items()
    }


def test_same_seed_gives_bit_identical_fpm_tables():
    first = _build_tables(seed=20120924)
    second = _build_tables(seed=20120924)
    assert first == second  # exact float equality, not approx


def test_different_seed_perturbs_the_tables():
    """Control: the noise model is actually live (not degenerate)."""
    assert _build_tables(seed=1) != _build_tables(seed=2)


def test_numeric_verification_is_seed_stable():
    """The REP001 fix in app/verify.py keeps RngStream-derived data."""
    partition = column_based_partition([18, 11, 7], 6)
    first = verify_partition_numerically(partition, block_size=4, seed=11)
    second = verify_partition_numerically(partition, block_size=4, seed=11)
    assert first == second
