"""Unit tests for the simulated benchmark timer."""

import pytest

from repro.measurement.timer import SimulatedTimer
from repro.platform.noise import NoiseModel
from repro.util.rng import RngStream


@pytest.fixture()
def timer():
    return SimulatedTimer(NoiseModel(RngStream(7), sigma=0.05))


class TestSimulatedTimer:
    def test_noisy_around_ideal(self, timer, quiet_bench):
        kernel = quiet_bench.socket_kernel(0, 5)
        ideal = kernel.run_time(400)
        samples = [timer.time_kernel(kernel, 400, rep) for rep in range(50)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(ideal, rel=0.05)
        assert len(set(samples)) > 1

    def test_repetition_keyed(self, timer, quiet_bench):
        kernel = quiet_bench.socket_kernel(0, 5)
        assert timer.time_kernel(kernel, 400, 0) == timer.time_kernel(
            kernel, 400, 0
        )
        assert timer.time_kernel(kernel, 400, 0) != timer.time_kernel(
            kernel, 400, 1
        )

    def test_contention_context_keyed(self, timer, quiet_bench):
        kernel = quiet_bench.gpu_kernel(1, 3)
        idle = timer.time_kernel(kernel, 900, 0, busy_cpu_cores=0)
        busy = timer.time_kernel(kernel, 900, 0, busy_cpu_cores=5)
        assert busy > idle  # contention dominates the small noise

    def test_rejects_negative_repetition(self, timer, quiet_bench):
        with pytest.raises(ValueError):
            timer.time_kernel(quiet_bench.socket_kernel(0, 5), 10, -1)
