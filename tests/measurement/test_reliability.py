"""Unit tests for the repeat-until-reliable protocol."""

import pytest

from repro.measurement.reliability import (
    Measurement,
    ReliabilityCriterion,
    measure_until_reliable,
)
from repro.util.rng import RngStream


class TestCriterion:
    def test_defaults_sane(self):
        c = ReliabilityCriterion()
        assert c.min_repetitions >= 2
        assert c.max_repetitions >= c.min_repetitions

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            ReliabilityCriterion(min_repetitions=10, max_repetitions=5)

    def test_rejects_bad_rel_err(self):
        with pytest.raises(ValueError):
            ReliabilityCriterion(rel_err=0.0)


class TestMeasureUntilReliable:
    def test_constant_signal_stops_at_minimum(self):
        calls = []

        def sample(rep):
            calls.append(rep)
            return 1.0

        c = ReliabilityCriterion(min_repetitions=5, max_repetitions=50)
        m = measure_until_reliable(sample, c)
        assert m.repetitions == 5
        assert m.reliable
        assert m.mean == 1.0
        assert calls == list(range(5))

    def test_noisy_signal_repeats_more(self):
        rng = RngStream(3)

        def sample(rep):
            return 1.0 * rng.child(str(rep)).lognormal_factor(0.2)

        tight = ReliabilityCriterion(
            rel_err=0.05, min_repetitions=5, max_repetitions=500
        )
        m = measure_until_reliable(sample, tight)
        assert m.repetitions > 5
        assert m.reliable

    def test_budget_exhaustion_flags_unreliable(self):
        rng = RngStream(5)

        def sample(rep):
            return 1.0 * rng.child(str(rep)).lognormal_factor(0.8)

        c = ReliabilityCriterion(rel_err=0.001, min_repetitions=5, max_repetitions=8)
        m = measure_until_reliable(sample, c)
        assert m.repetitions == 8
        assert not m.reliable
        assert m.rel_precision > 0.001

    def test_rejects_negative_timings(self):
        with pytest.raises(ValueError, match="negative"):
            measure_until_reliable(lambda rep: -1.0)

    def test_mean_and_std_consistent(self):
        values = [1.0, 1.1, 0.9, 1.05, 0.95, 1.0]

        def sample(rep):
            return values[rep]

        c = ReliabilityCriterion(
            rel_err=1e-9, min_repetitions=6, max_repetitions=6
        )
        m = measure_until_reliable(sample, c)
        assert m.mean == pytest.approx(sum(values) / 6)
        assert m.std > 0


class TestMeasurement:
    def test_rejects_zero_repetitions(self):
        with pytest.raises(ValueError):
            Measurement(mean=1, std=0, repetitions=0, rel_precision=0, reliable=True)
