"""Unit tests for the hybrid benchmark facade (Section III experiments)."""

import pytest

from repro.measurement.benchmark import HybridBenchmark


class TestTimerIntegration:
    def test_deterministic_for_same_seed(self, node):
        a = HybridBenchmark(node, seed=5, noise_sigma=0.05)
        b = HybridBenchmark(node, seed=5, noise_sigma=0.05)
        ka = a.socket_kernel(0, 5)
        kb = b.socket_kernel(0, 5)
        assert a.measure_time(ka, 300).mean == b.measure_time(kb, 300).mean

    def test_seed_changes_measurements(self, node):
        a = HybridBenchmark(node, seed=5, noise_sigma=0.05)
        b = HybridBenchmark(node, seed=6, noise_sigma=0.05)
        ma = a.measure_time(a.socket_kernel(0, 5), 300)
        mb = b.measure_time(b.socket_kernel(0, 5), 300)
        assert ma.mean != mb.mean

    def test_noise_free_matches_ideal(self, quiet_bench):
        kernel = quiet_bench.socket_kernel(0, 5)
        m = quiet_bench.measure_time(kernel, 300)
        assert m.mean == pytest.approx(kernel.run_time(300))
        assert m.std == 0.0


class TestMeasurements:
    def test_measure_speed_consistency(self, bench):
        m = bench.measure_socket_speed(2, 6, 500)
        assert 90 < m.speed_gflops < 120
        assert m.timing.repetitions >= 5

    def test_gpu_speed_versions_ordered(self, quiet_bench):
        x = 900.0
        v1 = quiet_bench.measure_gpu_speed(1, x, version=1).speed_gflops
        v2 = quiet_bench.measure_gpu_speed(1, x, version=2).speed_gflops
        assert v2 > v1

    def test_shared_socket_returns_both_sides(self, quiet_bench):
        cpu_m, gpu_m = quiet_bench.measure_shared_socket(1, 1100.0, 1 / 11)
        assert cpu_m.area_blocks == pytest.approx(100.0)
        assert gpu_m.area_blocks == pytest.approx(1000.0)
        assert cpu_m.speed_gflops > 0 and gpu_m.speed_gflops > 0

    def test_shared_socket_shows_gpu_drop(self, quiet_bench):
        _, gpu_shared = quiet_bench.measure_shared_socket(1, 1100.0, 1 / 11)
        gpu_solo = quiet_bench.measure_gpu_speed(1, 1000.0)
        drop = 1 - gpu_shared.speed_gflops / gpu_solo.speed_gflops
        assert 0.05 < drop < 0.2

    def test_shared_socket_rejects_bad_fraction(self, bench):
        with pytest.raises(ValueError):
            bench.measure_shared_socket(1, 100.0, 1.0)

    def test_index_validation(self, bench):
        with pytest.raises(ValueError):
            bench.socket_kernel(9, 6)
        with pytest.raises(ValueError):
            bench.gpu_kernel(5)

    def test_measure_time_rejects_zero_area(self, bench):
        with pytest.raises(ValueError):
            bench.measure_time(bench.socket_kernel(0, 5), 0.0)
