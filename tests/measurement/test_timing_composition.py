"""The pinned timing-modifier composition order, with everything on.

Satellite of the drift PR: ``compose_timing`` is the ONE place the
ideal time, the drift time-multiplier, the fault spike and the noise
perturbation compose.  These tests enable all three modifiers at once
and assert the scalar and batch measurement lanes produce bit-identical
timings — floating-point multiplication is not associative, so any
private re-ordering in either lane would show up here.
"""

import numpy as np
import pytest

from repro.measurement.timer import SimulatedTimer, compose_timing
from repro.platform.drift import DriftModel
from repro.platform.faults import FaultPlan
from repro.platform.noise import NoiseModel
from repro.util.rng import RngStream


def _timer(sigma=0.03, spike_p=0.6, drift_spec="jitter:*:sigma=0.2"):
    """A timer with noise + spikes + drift all enabled (no failures)."""
    noise = NoiseModel(RngStream(17).child("bench"), sigma=sigma)
    faults = FaultPlan.from_spec(f"spike:*:p={spike_p},x=4", seed=17)
    drift = DriftModel.from_spec(drift_spec, seed=17)
    return SimulatedTimer(noise, faults=faults, drift=drift)


class TestComposeTiming:
    def test_pinned_order(self):
        # (ideal x drift) -> perturb -> x spike, NOT any other grouping.
        perturb = lambda s: s * 1.0000001  # noqa: E731 - stand-in noise
        value = compose_timing(3.0, 1.5, 2.0, perturb)
        assert value == ((3.0 * 1.5) * 1.0000001) * 2.0

    def test_neutral_factors_are_exact_identity(self):
        ideal = 0.123456789
        assert compose_timing(ideal, 1.0, 1.0, lambda s: s) == ideal

    def test_array_spike_factor_broadcasts(self):
        spikes = np.array([1.0, 4.0])
        values = compose_timing(2.0, 1.5, spikes, lambda s: np.full(2, s))
        assert np.array_equal(values, np.array([3.0, 12.0]))


class TestAllModifiersBitIdentity:
    @pytest.mark.parametrize("at_s", [0.0, 0.5, 3.25, 11.0])
    def test_batch_equals_scalar_with_noise_spikes_and_drift(
        self, quiet_bench, at_s
    ):
        timer = _timer()
        kernel = quiet_bench.gpu_kernel(1, 3)
        reps = list(range(12))
        batch = timer.time_kernel_batch(kernel, 700.0, reps, at_s=at_s)
        scalar = np.array(
            [
                timer.time_kernel(kernel, 700.0, rep, at_s=at_s)
                for rep in reps
            ]
        )
        assert np.array_equal(batch, scalar)

    def test_drift_free_timer_unchanged(self, quiet_bench):
        """drift=None reproduces the pre-drift timer bit for bit."""
        noise = NoiseModel(RngStream(17).child("bench"), sigma=0.03)
        faults = FaultPlan.from_spec("spike:*:p=0.6,x=4", seed=17)
        plain = SimulatedTimer(noise, faults=faults)
        inert = SimulatedTimer(
            noise, faults=faults, drift=DriftModel.from_spec("", seed=17)
        )
        kernel = quiet_bench.socket_kernel(0, 5)
        for rep in range(8):
            assert plain.time_kernel(kernel, 300.0, rep) == inert.time_kernel(
                kernel, 300.0, rep
            )
        reps = list(range(8))
        assert np.array_equal(
            plain.time_kernel_batch(kernel, 300.0, reps),
            inert.time_kernel_batch(kernel, 300.0, reps),
        )

    def test_at_zero_without_throttle_matches_drift_free(self, quiet_bench):
        """Drift rules that are quiet at t=0 leave default timings alone."""
        noise = NoiseModel(RngStream(17).child("bench"), sigma=0.03)
        drifted = SimulatedTimer(
            noise, drift=DriftModel.from_spec("throttle:*:t0=5", seed=17)
        )
        plain = SimulatedTimer(noise)
        kernel = quiet_bench.gpu_kernel(0, 2)
        assert drifted.time_kernel(kernel, 500.0, 0) == plain.time_kernel(
            kernel, 500.0, 0
        )
        # ... and past t0 the throttle stretches the timing.
        assert drifted.time_kernel(kernel, 500.0, 0, at_s=6.0) > \
            plain.time_kernel(kernel, 500.0, 0)

    def test_drift_scales_independent_of_noise_stream(self, quiet_bench):
        """at_s participates in neither the noise nor the fault paths."""
        timer = _timer(drift_spec="throttle:*:t0=0,tau=0,floor=0.5")
        kernel = quiet_bench.gpu_kernel(1, 3)
        base = _timer(drift_spec="")
        # Hard 0.5-speed throttle from t=0 means a 2.0 time multiplier;
        # the drift factor multiplies INSIDE the perturbation (pinned
        # order), so the bitwise expectation goes through compose_timing
        # with the same noise and spike draws as the undrifted timer.
        ideal = kernel.run_time(700.0, 0)
        spike = base.faults.kernel_outcome(
            kernel.name, "x700.0", "busy0", "r3", "a0"
        ).spike_factor
        expected = compose_timing(
            ideal,
            2.0,
            spike,
            lambda s: base.noise.perturb(
                s, kernel.name, "x700.0", "busy0", "r3"
            ),
        )
        assert timer.time_kernel(kernel, 700.0, 3, at_s=1.0) == expected
