"""Shared fixtures: the paper's node, its devices, and fast configs."""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentConfig
from repro.measurement.benchmark import HybridBenchmark
from repro.platform.device import build_devices
from repro.platform.presets import cpu_only_node, ig_icl_node

try:
    from hypothesis import settings

    # tier-1 keeps the property suites bounded so the full run stays fast;
    # nightly removes the deadline and widens the search.
    settings.register_profile("tier1", max_examples=25, deadline=None)
    settings.register_profile("nightly", max_examples=400, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "tier1"))
except ImportError:  # pragma: no cover - hypothesis is in the base image
    pass


@pytest.fixture(autouse=True, scope="session")
def _isolated_cache_dir(tmp_path_factory):
    """Point the CLI's default artifact store at a throwaway directory.

    Keeps the suite hermetic: no test run reads or pollutes the
    developer's ~/.cache/repro.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:  # pragma: no cover - depends on the invoking environment
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def node():
    """The paper's hybrid node (Table I preset)."""
    return ig_icl_node()


@pytest.fixture(scope="session")
def cpu_node():
    """The accelerator-free baseline node."""
    return cpu_only_node()


@pytest.fixture(scope="session")
def devices(node):
    """(sockets, gpus) of the preset node."""
    return build_devices(node)


@pytest.fixture(scope="session")
def sockets(devices):
    return devices[0]


@pytest.fixture(scope="session")
def gpus(devices):
    """[Tesla C870, GeForce GTX680] in attachment order."""
    return devices[1]


@pytest.fixture(scope="session")
def c870(gpus):
    return gpus[0]


@pytest.fixture(scope="session")
def gtx680(gpus):
    return gpus[1]


@pytest.fixture()
def bench(node):
    """A benchmark facade with mild noise (fresh per test)."""
    return HybridBenchmark(node, seed=123, noise_sigma=0.01)


@pytest.fixture()
def quiet_bench(node):
    """A noise-free benchmark facade (deterministic timings)."""
    return HybridBenchmark(node, seed=123, noise_sigma=0.0)


@pytest.fixture(scope="session")
def fast_config():
    """A coarse experiment config for quick end-to-end tests."""
    return ExperimentConfig(seed=7, noise_sigma=0.01, fast=True)
