"""Orchestrator: registry-driven runs, result caching, process pools.

Covers the PR's acceptance criteria directly: the warm-cache report must
be at least 5x faster than the cold one (measured on the span tree), and
a parallel run must be bit-identical to the sequential one.
"""

import dataclasses

import pytest

from repro.experiments.common import ExperimentConfig
from repro.experiments.fig6_process_times import Fig6Result
from repro.experiments.orchestrator import (
    REPORT_EXPERIMENTS,
    ExperimentError,
    FailedExperiment,
    load_cached_result,
    result_key,
    run_experiment,
    run_experiments,
    run_full_report,
)
from repro.experiments.registry import all_experiments, get_experiment
from repro.obs import Tracer, use_tracer
from repro.store import ResultStore, canonical_json, digest_key
from repro.util.serde import to_jsonable


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


class TestRegistry:
    def test_all_twenty_one_experiments_registered(self):
        names = [e.name for e in all_experiments()]
        assert len(names) == len(set(names)) == 21
        for required in REPORT_EXPERIMENTS + (
            "jacobi",
            "online_fpm",
            "fault_tolerance",
            "drift",
        ):
            assert required in names

    def test_entries_are_frozen_and_renderable(self):
        exp = get_experiment("fig6")
        assert dataclasses.is_dataclass(exp) and exp.__dataclass_params__.frozen
        assert exp.kind == "figure"
        assert exp.paper_refs == ("Fig. 6",)
        assert exp.module == "repro.experiments.fig6_process_times"

    def test_unknown_name_lists_the_catalogue(self):
        with pytest.raises(KeyError, match="fig2"):
            get_experiment("fig99")


class TestResultCaching:
    def test_typed_round_trip(self, fast_config, store):
        cold = run_experiment("fig6", fast_config, store=store)
        warm = run_experiment("fig6", fast_config, store=store)
        assert isinstance(warm, Fig6Result)
        assert warm == cold
        assert load_cached_result("fig6", fast_config, store=store) == cold

    def test_no_store_means_no_cache(self, fast_config):
        assert load_cached_result("fig6", fast_config) is None

    def test_fast_and_full_configs_never_collide(self):
        """Satellite regression: ``fast`` participates in the cache key."""
        full = ExperimentConfig(seed=7, noise_sigma=0.01, fast=False)
        fast = full.faster()
        assert fast != full
        for name in REPORT_EXPERIMENTS:
            assert digest_key("result", result_key(name, full)) != digest_key(
                "result", result_key(name, fast)
            )

    def test_cache_key_covers_every_config_field(self, fast_config):
        covered = set(fast_config.cache_key())
        declared = {f.name for f in dataclasses.fields(ExperimentConfig)}
        assert covered == declared

    def test_unknown_experiment_fails_before_running(self, fast_config, store):
        with pytest.raises(KeyError):
            run_experiments(["fig6", "fig99"], fast_config, store=store)


class TestParallelism:
    def test_jobs_are_bit_identical(self, fast_config, tmp_path):
        sequential = run_experiments(
            REPORT_EXPERIMENTS,
            fast_config,
            jobs=1,
            store=ResultStore(tmp_path / "seq"),
        )
        parallel = run_experiments(
            REPORT_EXPERIMENTS,
            fast_config,
            jobs=4,
            store=ResultStore(tmp_path / "par"),
        )
        assert list(sequential) == list(parallel) == list(REPORT_EXPERIMENTS)
        for name in REPORT_EXPERIMENTS:
            assert canonical_json(to_jsonable(sequential[name])) == canonical_json(
                to_jsonable(parallel[name])
            ), name

    def test_parallel_report_without_store(self, fast_config):
        # jobs > 1 must also work cache-less (results travel via pickle)
        results = run_experiments(("fig6", "fig7"), fast_config, jobs=2, store=None)
        assert isinstance(results["fig6"], Fig6Result)


class TestWarmReport:
    def test_warm_report_is_at_least_5x_faster(self, fast_config, store):
        """The tentpole's acceptance criterion, measured on the span tree."""
        cold_tracer = Tracer()
        with use_tracer(cold_tracer):
            cold_text = run_full_report(fast_config, store=store)
        warm_tracer = Tracer()
        with use_tracer(warm_tracer):
            warm_text = run_full_report(fast_config, store=store)
        assert warm_text == cold_text

        (cold_root,) = cold_tracer.roots
        (warm_root,) = warm_tracer.roots
        assert cold_root.name == warm_root.name == "report.full"
        assert cold_root.wall_duration_s >= 5.0 * warm_root.wall_duration_s

        # every experiment replayed from the store, none re-measured
        metrics = warm_tracer.metrics.snapshot()
        assert metrics["store.hit"] == len(REPORT_EXPERIMENTS)
        assert "store.miss" not in metrics
        experiment_spans = [
            s for s in warm_root.children if s.name.startswith("experiment.")
        ]
        assert len(experiment_spans) == len(REPORT_EXPERIMENTS)
        assert all(s.attrs.get("cache_hit") for s in experiment_spans)

    def test_report_text_matches_the_legacy_path(self, fast_config):
        from repro.experiments.report import full_report

        with pytest.deprecated_call():
            legacy = full_report(fast_config)
        assert run_full_report(fast_config) == legacy


@pytest.fixture()
def boom_experiment():
    """A registered experiment that always fails (removed on teardown)."""
    from repro.experiments import registry
    from repro.experiments.registry import register_experiment

    def boom_run(config):
        raise RuntimeError("kaboom")

    @register_experiment("boom", run=boom_run, kind="ablation")
    def boom_fmt(result):  # pragma: no cover - never rendered
        return "never"

    yield "boom"
    registry._REGISTRY.pop("boom", None)


@pytest.fixture()
def broken_fig2():
    """Swap fig2's run for a failing one (restored on teardown)."""
    from repro.experiments import registry

    original = get_experiment("fig2")

    def fail_run(config):
        raise RuntimeError("injected fig2 failure")

    registry._REGISTRY["fig2"] = dataclasses.replace(original, run=fail_run)
    yield "fig2"
    registry._REGISTRY["fig2"] = original


class TestFailureHandling:
    def test_raise_mode_wraps_the_experiment_name(self, fast_config, boom_experiment):
        with pytest.raises(ExperimentError, match="'boom' failed: kaboom") as err:
            run_experiments(["boom"], fast_config, store=None)
        assert err.value.experiment == "boom"
        assert isinstance(err.value.__cause__, RuntimeError)

    def test_collect_mode_yields_a_sentinel(self, fast_config, boom_experiment):
        results = run_experiments(
            ["boom"], fast_config, store=None, on_error="collect"
        )
        assert results["boom"] == FailedExperiment(
            name="boom", error="RuntimeError: kaboom"
        )

    def test_retry_reruns_and_counts(self, fast_config):
        from repro.experiments import registry
        from repro.experiments.registry import register_experiment

        attempts = []

        def flaky_run(config):
            attempts.append(1)
            if len(attempts) < 2:
                raise RuntimeError("transient")
            return Fig6Result  # any picklable sentinel

        @register_experiment("flaky", run=flaky_run, kind="ablation")
        def flaky_fmt(result):  # pragma: no cover
            return "ok"

        try:
            tracer = Tracer()
            with use_tracer(tracer):
                results = run_experiments(
                    ["flaky"], fast_config, store=None, retries=1
                )
            assert results["flaky"] is Fig6Result
            assert len(attempts) == 2
            assert tracer.metrics.snapshot()["report.retries"] == 1
        finally:
            registry._REGISTRY.pop("flaky", None)

    def test_pooled_failure_cancels_and_names_the_experiment(
        self, fast_config, boom_experiment
    ):
        with pytest.raises(ExperimentError, match="boom"):
            run_experiments(["fig6", "boom"], fast_config, jobs=2, store=None)

    def test_invalid_arguments_rejected(self, fast_config):
        with pytest.raises(ValueError, match="on_error"):
            run_experiments(["fig6"], fast_config, on_error="explode")
        with pytest.raises(ValueError, match="retries"):
            run_experiments(["fig6"], fast_config, retries=-1)
        with pytest.raises(ValueError, match="timeout_s"):
            run_experiments(["fig6"], fast_config, timeout_s=0.0)


class TestDegradedReport:
    def test_failed_section_renders_and_checks_are_skipped(
        self, fast_config, store, broken_fig2
    ):
        text = run_full_report(fast_config, store=store, retries=0)
        assert "[FAILED fig2: RuntimeError: injected fig2 failure]" in text
        assert "Shape checks skipped: 1 experiment(s) failed (fig2)." in text
        assert "Shape checks (paper claim vs measured):" not in text
        # the other six sections render normally
        assert text.count("[FAILED") == 1

    def test_pooled_degraded_report_matches_sequential(
        self, fast_config, tmp_path, broken_fig2
    ):
        sequential = run_full_report(
            fast_config, jobs=1, store=ResultStore(tmp_path / "a"), retries=0
        )
        pooled = run_full_report(
            fast_config, jobs=4, store=ResultStore(tmp_path / "b"), retries=0
        )
        assert pooled == sequential

    def test_failure_never_cached(self, fast_config, store, broken_fig2):
        run_full_report(fast_config, store=store, retries=0)
        assert load_cached_result("fig2", fast_config, store=store) is None


@pytest.mark.nightly
def test_full_resolution_parallel_report(tmp_path):
    """Nightly: the paper-resolution report through a 4-worker pool."""
    config = ExperimentConfig()
    store = ResultStore(tmp_path / "cache")
    text = run_full_report(config, jobs=4, store=store)
    assert "[FAIL]" not in text
    assert run_full_report(config, jobs=1, store=ResultStore(tmp_path / "b")) == text
