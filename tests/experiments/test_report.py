"""The full report: every shape check must pass in the fast configuration."""

import pytest

from repro.experiments.common import ExperimentConfig
from repro.experiments.orchestrator import run_full_report


@pytest.fixture(scope="module")
def report_text(fast_config):
    return run_full_report(fast_config)


class TestFullReport:
    def test_contains_every_section(self, report_text):
        for marker in (
            "Figure 2",
            "Figure 3",
            "Figure 5",
            "Table II",
            "Table III",
            "Figure 6",
            "Figure 7",
            "Shape checks",
        ):
            assert marker in report_text

    def test_all_shape_checks_pass(self, report_text):
        assert "[FAIL]" not in report_text
        assert report_text.count("[PASS]") >= 9
