"""Internal-consistency checks of the transcribed paper data.

These tests validate the *transcription* (and the paper's own
arithmetic): the published tables must be consistent with the claims the
text makes about them.  They involve no simulation, so a typo in
``paper_data.py`` cannot silently skew every comparison.
"""

import pytest

from repro.experiments import paper_data as pd


class TestTable2Transcription:
    def test_all_sizes_present(self):
        for table in (pd.TABLE2_CPUS_ONLY, pd.TABLE2_GTX680_ONLY, pd.TABLE2_HYBRID_FPM):
            assert set(table) == set(pd.TABLE2_SIZES)

    def test_hybrid_wins_everywhere(self):
        for n in pd.TABLE2_SIZES:
            assert pd.TABLE2_HYBRID_FPM[n] < pd.TABLE2_CPUS_ONLY[n]
            assert pd.TABLE2_HYBRID_FPM[n] < pd.TABLE2_GTX680_ONLY[n]

    def test_gpu_crossover_between_40_and_60(self):
        """GTX680 alone beats the CPUs at 40x40 and loses by 60x60."""
        assert pd.TABLE2_GTX680_ONLY[40] < pd.TABLE2_CPUS_ONLY[40]
        assert pd.TABLE2_GTX680_ONLY[60] > pd.TABLE2_CPUS_ONLY[60]

    def test_times_grow_with_problem_size(self):
        for table in (pd.TABLE2_CPUS_ONLY, pd.TABLE2_GTX680_ONLY, pd.TABLE2_HYBRID_FPM):
            times = [table[n] for n in pd.TABLE2_SIZES]
            assert times == sorted(times)

    def test_cpu_scaling_roughly_cubic(self):
        """CPU-only time should scale ~n^3 (fixed hardware, cubic work)."""
        t40, t70 = pd.TABLE2_CPUS_ONLY[40], pd.TABLE2_CPUS_ONLY[70]
        ratio = t70 / t40
        assert 0.6 * (70 / 40) ** 3 <= ratio <= 1.4 * (70 / 40) ** 3


class TestTable3Transcription:
    def test_rows_sum_close_to_matrix_area(self):
        """G1 + G2 + 2 S5 + 2 S6 must cover the n^2 blocks (both schemes)."""
        for table in (pd.TABLE3_CPM, pd.TABLE3_FPM):
            for n, row in table.items():
                total = row["G1"] + row["G2"] + 2 * row["S5"] + 2 * row["S6"]
                assert abs(total - n * n) <= 0.02 * n * n, (n, total)

    def test_text_claim_fpm_ratio_nine_in_core(self):
        row = pd.TABLE3_FPM[40]
        assert 8.5 <= row["G1"] / row["S6"] <= 10.5

    def test_text_claim_fpm_ratio_declines(self):
        r50 = pd.TABLE3_FPM[50]["G1"] / pd.TABLE3_FPM[50]["S6"]
        r70 = pd.TABLE3_FPM[70]["G1"] / pd.TABLE3_FPM[70]["S6"]
        assert r50 > r70
        assert 4.0 <= r70 <= 5.0  # "around 6 ~ 4 times"

    def test_text_claim_cpm_ratio_stays_near_eight(self):
        row = pd.TABLE3_CPM[70]
        assert 7.0 <= row["G1"] / row["S6"] <= 8.5  # "nearly 8"

    def test_cpm_overloads_g1_beyond_memory(self):
        for n in (50, 60, 70):
            assert pd.TABLE3_CPM[n]["G1"] > pd.TABLE3_FPM[n]["G1"]

    def test_fpm_g1_within_memory_at_40(self):
        assert pd.TABLE3_FPM[40]["G1"] <= pd.FIG3_MEMORY_LIMIT


class TestShapeConstants:
    def test_bands_are_ordered(self):
        lo, hi = pd.RATIO_G1_S6_OUT_OF_CORE
        assert lo < hi < pd.RATIO_G1_S6_IN_CORE
        lo, hi = pd.GPU_CONTENTION_DROP
        assert 0 < lo < hi < 1

    def test_improvement_fractions_sane(self):
        for v in (
            pd.V3_OVER_V2_GAIN,
            pd.FIG6_COMPUTATION_CUT,
            pd.FIG7_CUT_VS_CPM,
            pd.FIG7_CUT_VS_HOMOGENEOUS,
        ):
            assert 0 < v < 1
