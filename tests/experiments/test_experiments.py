"""End-to-end tests of the reproduction experiments (fast configuration).

Each test checks the *shape* criteria DESIGN.md lists for its table or
figure — who wins, where the crossovers sit, rough improvement factors.
"""

import pytest

from repro.experiments import (
    fig2_socket_fpm,
    fig3_gpu_versions,
    fig5_contention,
    fig6_process_times,
    fig7_exec_vs_size,
    jacobi_app,
    table2_exec_time,
    table3_partitioning,
)
from repro.experiments.paper_data import TABLE3_FPM


@pytest.fixture(scope="module")
def fig2(fast_config):
    return fig2_socket_fpm.run(fast_config)


@pytest.fixture(scope="module")
def fig3(fast_config):
    return fig3_gpu_versions.run(fast_config)


@pytest.fixture(scope="module")
def fig5(fast_config):
    return fig5_contention.run(fast_config)


@pytest.fixture(scope="module")
def table2(fast_config):
    return table2_exec_time.run(fast_config)


@pytest.fixture(scope="module")
def table3(fast_config):
    return table3_partitioning.run(fast_config)


@pytest.fixture(scope="module")
def fig6(fast_config):
    return fig6_process_times.run(fast_config)


@pytest.fixture(scope="module")
def fig7(fast_config):
    return fig7_exec_vs_size.run(fast_config)


class TestFig2:
    def test_s6_above_s5(self, fig2):
        for a, b in zip(fig2.s5, fig2.s6):
            assert b > a

    def test_plateaus_in_paper_band(self, fig2):
        assert 95 <= fig2.plateau("s6") <= 115
        assert 82 <= fig2.plateau("s5") <= 102

    def test_ramp_up_shape(self, fig2):
        assert fig2.s6[0] < fig2.plateau("s6")

    def test_format(self, fig2):
        out = fig2_socket_fpm.format_result(fig2)
        assert "s5" in out and "s6" in out


class TestFig3:
    def test_v2_doubles_v1_resident(self, fig3):
        idx = [i for i in fig3.in_core_sizes() if fig3.sizes[i] > 300]
        ratios = [fig3.v2[i] / fig3.v1[i] for i in idx]
        assert all(1.5 <= r <= 2.7 for r in ratios)

    def test_v2_cliff_at_limit(self, fig3):
        peak_in = max(fig3.v2[i] for i in fig3.in_core_sizes())
        first_out = fig3.v2[fig3.out_of_core_sizes()[0]]
        assert first_out < 0.7 * peak_in

    def test_v3_gains_out_of_core(self, fig3):
        for i in fig3.out_of_core_sizes():
            assert fig3.v3[i] > fig3.v2[i] * 1.1

    def test_v3_equals_v2_resident(self, fig3):
        for i in fig3.in_core_sizes():
            assert fig3.v3[i] == pytest.approx(fig3.v2[i], rel=0.05)

    def test_memory_limit_near_papers_line(self, fig3):
        assert 1000 <= fig3.memory_limit_blocks <= 1300


class TestFig5:
    def test_gpu_drop_band(self, fig5):
        for s in fig5.shared:
            assert 0.04 <= s.mean_gpu_drop <= 0.18

    def test_model_accuracy_near_85(self, fig5):
        for s in fig5.shared:
            assert 0.82 <= s.gpu_model_accuracy <= 0.96

    def test_cpu_barely_affected(self, fig5):
        for s in fig5.shared:
            assert s.mean_cpu_drop < 0.05


class TestTable2:
    def test_gpu_beats_cpus_in_memory(self, table2):
        cpus, gtx, _ = table2.row(40)
        assert gtx < cpus

    def test_cpus_beat_gpu_out_of_memory(self, table2):
        cpus, gtx, _ = table2.row(70)
        assert gtx > cpus

    def test_hybrid_wins_everywhere(self, table2):
        for n in table2.sizes:
            row = table2.row(n)
            assert row[2] == min(row)

    def test_hybrid_speedup_band(self, table2):
        cpus, _, hybrid = table2.row(40)
        assert 2.0 <= cpus / hybrid <= 5.0

    def test_magnitudes_within_2x_of_paper(self, table2):
        from repro.experiments.paper_data import TABLE2_CPUS_ONLY

        for i, n in enumerate(table2.sizes):
            ratio = table2.cpus_only[i] / TABLE2_CPUS_ONLY[n]
            assert 0.5 <= ratio <= 2.0


class TestTable3:
    def test_cpm_ratio_stays_high(self, table3):
        assert table3.cpm_row(70).ratio_g1_s6() > 6.5

    def test_fpm_ratio_declines(self, table3):
        r40 = table3.fpm_row(40).ratio_g1_s6()
        r70 = table3.fpm_row(70).ratio_g1_s6()
        assert r40 > r70
        assert 3.2 <= r70 <= 6.0

    def test_cpm_overloads_g1_beyond_memory(self, table3):
        for n in (50, 60, 70):
            assert table3.cpm_row(n).g1 > table3.fpm_row(n).g1

    def test_fpm_allocations_near_paper(self, table3):
        """Every FPM cell within 35% of the paper's (same simulator caveat)."""
        for n in table3.sizes:
            ours = table3.fpm_row(n)
            paper = TABLE3_FPM[n]
            for key, got in (
                ("G1", ours.g1),
                ("G2", ours.g2),
                ("S5", ours.s5),
                ("S6", ours.s6),
            ):
                assert abs(got - paper[key]) / paper[key] < 0.35

    def test_rows_sum_close_to_total(self, table3):
        """2 GPUs + 2 S5 + 2 S6 should cover the matrix."""
        for n in table3.sizes:
            r = table3.fpm_row(n)
            total = r.g1 + r.g2 + 2 * r.s5 + 2 * r.s6
            assert abs(total - n * n) <= 0.02 * n * n


class TestFig6:
    def test_cpm_straggler_is_gtx680(self, fig6):
        assert fig6.straggler_rank(fig6.cpm_times) == fig6.dedicated_ranks[1]

    def test_fpm_flatter_than_cpm(self, fig6):
        assert fig6.imbalance(fig6.fpm_times) < fig6.imbalance(fig6.cpm_times)

    def test_computation_cut_band(self, fig6):
        assert 0.15 <= fig6.computation_cut <= 0.6


class TestJacobiApplication:
    @pytest.fixture(scope="class")
    def jacobi(self, fast_config):
        return jacobi_app.run(fast_config)

    def test_fpm_wins(self, jacobi):
        assert jacobi.fpm_time < jacobi.homogeneous_time < jacobi.cpm_time

    def test_fpm_balanced(self, jacobi):
        assert jacobi.fpm_imbalance < 1.3

    def test_gpu_pinned_near_capacity(self, jacobi):
        gtx = jacobi.allocation_of("GeForce GTX680")
        assert 0.9 * jacobi.gtx_capacity_rows <= gtx
        assert gtx <= 1.3 * jacobi.gtx_capacity_rows

    def test_sockets_bandwidth_bound(self, jacobi):
        """S5 and S6 sockets get near-equal stencil shares (DRAM wall)."""
        s5 = jacobi.allocation_of("socket0:c5")
        s6 = jacobi.allocation_of("socket2:c6")
        assert abs(s5 - s6) / s6 < 0.1

    def test_format(self, jacobi):
        assert "FPM" in jacobi_app.format_result(jacobi)


class TestFig7:
    def test_orderings_at_scale(self, fig7):
        for n in (50, 60, 70, 80):
            i = fig7.sizes.index(n)
            assert fig7.fpm[i] < fig7.cpm[i] < fig7.homogeneous[i]

    def test_cpm_tracks_fpm_when_small(self, fig7):
        i = fig7.sizes.index(30)
        assert fig7.cpm[i] <= fig7.fpm[i] * 1.35

    def test_cuts_at_largest_size(self, fig7):
        big = fig7.sizes[-1]
        assert fig7.cut_vs_cpm(big) >= 0.15
        assert fig7.cut_vs_homogeneous(big) >= 0.3

    def test_monotone_growth(self, fig7):
        for series in (fig7.homogeneous, fig7.cpm, fig7.fpm):
            assert all(a < b for a, b in zip(series, series[1:]))
