"""Unit tests for the shared experiment configuration."""

import pytest

from repro.experiments.common import (
    ExperimentConfig,
    make_app,
    make_bench,
    make_cpu_only_app,
)


class TestExperimentConfig:
    def test_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.fast is False
        assert cfg.sweep_points == 16

    def test_fast_halves_sweeps(self):
        assert ExperimentConfig(fast=True).sweep_points == 8

    def test_faster_copy(self):
        cfg = ExperimentConfig()
        assert cfg.faster().fast is True
        assert cfg.fast is False  # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(noise_sigma=-0.1)
        with pytest.raises(ValueError):
            ExperimentConfig(model_max_blocks=0.0)


class TestFactories:
    def test_make_bench_uses_paper_node(self, fast_config):
        bench = make_bench(fast_config)
        assert bench.node.name == "ig.icl.utk.edu"
        assert len(bench.gpus) == 2

    def test_make_app_builds_models(self, fast_config):
        app = make_app(fast_config)
        assert len(app._models) == 6  # 2 GPUs + 4 sockets

    def test_make_app_without_models(self, fast_config):
        app = make_app(fast_config, build_models=False)
        assert app._models == {}

    def test_cpu_only_app(self, fast_config):
        app = make_cpu_only_app(fast_config)
        assert app.node.gpus == ()
        assert app.binding.num_processes == 24

    def test_deterministic_across_instances(self, fast_config):
        a = make_app(fast_config)
        b = make_app(fast_config)
        plan_a = a.plan(30, "fpm")
        plan_b = b.plan(30, "fpm")
        assert plan_a.unit_allocations == plan_b.unit_allocations
