"""Unit tests for experiment-result export."""

import json
from dataclasses import dataclass

import pytest

from repro.experiments.export import (
    export_csv,
    export_json,
    result_to_dict,
    series_to_csv,
)


@dataclass(frozen=True)
class Inner:
    value: float


@dataclass(frozen=True)
class Outer:
    name: str
    points: tuple[Inner, ...]
    sizes: tuple[int, ...]


class TestResultToDict:
    def test_nested_dataclasses(self):
        result = Outer("x", (Inner(1.5), Inner(2.5)), (10, 20))
        d = result_to_dict(result)
        assert d == {
            "name": "x",
            "points": [{"value": 1.5}, {"value": 2.5}],
            "sizes": [10, 20],
        }

    def test_scalars_pass_through(self):
        assert result_to_dict(3) == 3
        assert result_to_dict(None) is None

    def test_rejects_exotic_types(self):
        with pytest.raises(TypeError):
            result_to_dict(object())


class TestExportJson:
    def test_round_trip(self, tmp_path):
        result = Outer("exp", (Inner(1.0),), (5,))
        path = tmp_path / "r.json"
        export_json(result, path)
        loaded = json.loads(path.read_text())
        assert loaded["name"] == "exp"
        assert loaded["points"][0]["value"] == 1.0

    def test_real_experiment_result_exports(self, fast_config, tmp_path):
        from repro.experiments import fig2_socket_fpm

        result = fig2_socket_fpm.run(fast_config)
        path = tmp_path / "fig2.json"
        export_json(result, path)
        loaded = json.loads(path.read_text())
        assert len(loaded["s5"]) == len(loaded["sizes"])


class TestCsv:
    def test_series_layout(self):
        text = series_to_csv("x", [1, 2], {"a": [10, 20], "b": [30, 40]})
        lines = text.strip().splitlines()
        assert lines[0] == "x,a,b"
        assert lines[1] == "1,10,30"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            series_to_csv("x", [1], {"a": [1, 2]})

    def test_export_csv_file(self, tmp_path):
        path = tmp_path / "s.csv"
        export_csv(path, "n", [1], {"t": [2.0]})
        assert path.read_text().startswith("n,t")
