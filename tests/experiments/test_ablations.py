"""Shape tests for the ablation studies."""

import pytest

from repro.experiments.ablations import (
    aspect_ratio,
    blocking_factor,
    comm_aware,
    cpm_calibration,
    dma_engines,
    dynamic_vs_static,
    gpu_kernel_version,
    hierarchical_cluster,
    noise_sensitivity,
    online_fpm,
    task_granularity,
)


@pytest.fixture(scope="module")
def blocking(fast_config):
    return blocking_factor.run(fast_config)


@pytest.fixture(scope="module")
def dyn(fast_config):
    return dynamic_vs_static.run(fast_config)


@pytest.fixture(scope="module")
def noise(fast_config):
    return noise_sensitivity.run(fast_config, sigmas=(0.0, 0.05, 0.2))


@pytest.fixture(scope="module")
def cpm_cal(fast_config):
    return cpm_calibration.run(fast_config)


@pytest.fixture(scope="module")
def dma(fast_config):
    return dma_engines.run(fast_config)


class TestBlockingFactor:
    def test_u_shape_basin_near_640(self, blocking):
        assert blocking.best_factor in (320, 640, 1280)

    def test_extremes_are_worse(self, blocking):
        best = blocking.time_of(blocking.best_factor)
        assert blocking.time_of(160) > best
        assert blocking.time_of(2560) > best

    def test_coarse_blocks_hurt_balance(self, blocking):
        assert blocking.imbalances[-1] > blocking.imbalances[1]

    def test_rejects_non_divisor(self, fast_config):
        with pytest.raises(ValueError, match="divide"):
            blocking_factor.run(fast_config, factors=(777,))

    def test_format(self, blocking):
        out = blocking_factor.format_result(blocking)
        assert "best blocking factor" in out


class TestDynamicVsStatic:
    def test_ordering(self, dyn):
        assert dyn.fpm_time <= dyn.dynamic_time <= dyn.homogeneous_time

    def test_dynamic_converges_to_fpm(self, dyn):
        assert dyn.dynamic_converged_to_fpm < 0.10

    def test_dynamic_pays_migration(self, dyn):
        assert dyn.dynamic_blocks_migrated > 0
        assert dyn.dynamic_migration_time > 0

    def test_dynamic_much_better_than_homogeneous(self, dyn):
        assert dyn.dynamic_time < 0.7 * dyn.homogeneous_time


class TestNoiseSensitivity:
    def test_repetitions_grow_with_noise(self, noise):
        reps = [p.repetitions_total for p in noise.points]
        assert reps[0] < reps[1] < reps[2]

    def test_balance_robust_to_noise(self, noise):
        """The reliability protocol keeps partitions near-balanced."""
        base = noise.points[0].true_imbalance
        for p in noise.points:
            assert p.true_imbalance <= base * 1.2 + 0.1

    def test_time_robust_to_noise(self, noise):
        base = noise.points[0].fpm_total_time
        for p in noise.points:
            assert p.fpm_total_time <= base * 1.15


class TestCpmCalibration:
    def test_no_calibration_beats_fpm_overall(self, cpm_cal):
        for cal in cpm_cal.calibrations:
            assert cpm_cal.regret(cal) > 1.1

    def test_small_calibration_bad_for_small_problems(self, cpm_cal):
        n = cpm_cal.sizes[0]
        assert cpm_cal.cpm_time(400.0, n) > cpm_cal.fpm_time(n)

    def test_large_calibration_bad_for_large_problems(self, cpm_cal):
        n = cpm_cal.sizes[-1]
        assert cpm_cal.cpm_time(4900.0, n) > 1.15 * cpm_cal.fpm_time(n)

    def test_fpm_within_tolerance_everywhere(self, cpm_cal):
        """FPM matches or beats the best CPM at every size (5% slack)."""
        for j, n in enumerate(cpm_cal.sizes):
            best_cpm = min(row[j] for row in cpm_cal.cpm_times)
            assert cpm_cal.fpm_times[j] <= best_cpm * 1.05


class TestHierarchicalCluster:
    @pytest.fixture(scope="class")
    def cluster(self, fast_config):
        return hierarchical_cluster.run(fast_config)

    def test_allocations_cover_workload(self, cluster):
        assert sum(cluster.node_allocations) == 100 * 100

    def test_hybrid_node_gets_most(self, cluster):
        assert cluster.node_allocations[0] == max(cluster.node_allocations)

    def test_hierarchy_matches_flat(self, cluster):
        """The headline invariant: two-level == flat partitioning."""
        assert cluster.agreement_l1 < 0.03
        assert cluster.hierarchy_overhead < 1.02

    def test_format(self, cluster):
        out = hierarchical_cluster.format_result(cluster)
        assert "hierarchical vs flat" in out


class TestOnlineFpm:
    @pytest.fixture(scope="class")
    def online(self, fast_config):
        return online_fpm.run(fast_config)

    def test_converges(self, online):
        assert online.online_converged
        assert online.online_rounds <= 12

    def test_saves_measurements(self, online):
        assert online.measurement_saving > 0.3

    def test_reaches_full_sweep_partition(self, online):
        assert online.allocation_distance < 0.08

    def test_format(self, online):
        assert "measurement saving" in online_fpm.format_result(online)


class TestDmaEngines:
    def test_two_engines_gain_more(self, dma):
        assert dma.mean_gain(2) > dma.mean_gain(1)

    def test_both_engines_give_positive_gain(self, dma):
        assert dma.mean_gain(1) > 0.05
        assert dma.mean_gain(2) > 0.2

    def test_format(self, dma):
        out = dma_engines.format_result(dma)
        assert "mean gain" in out


class TestTaskGranularity:
    @pytest.fixture(scope="class")
    def tasks(self, fast_config):
        return task_granularity.run(fast_config)

    def test_u_shape(self, tasks):
        best = tasks.best_makespan
        assert tasks.makespan_of(tasks.chunks[0]) > best
        assert tasks.makespan_of(tasks.chunks[-1]) > best

    def test_fpm_at_or_below_best_chunk(self, tasks):
        assert tasks.fpm_makespan <= tasks.best_makespan * 1.05

    def test_fine_chunks_starve_gpu(self, tasks):
        """Tiny tasks keep the GPU slow, shrinking its share."""
        i_fine = 0
        i_best = tasks.chunks.index(tasks.best_chunk)
        assert tasks.gpu_share[i_fine] < tasks.gpu_share[i_best]

    def test_format(self, tasks):
        assert "best chunk" in task_granularity.format_result(tasks)


class TestGpuKernelVersion:
    @pytest.fixture(scope="class")
    def versions(self, fast_config):
        return gpu_kernel_version.run(fast_config)

    def test_later_versions_never_slower(self, versions):
        for n in versions.sizes:
            assert versions.time_of(3, n) <= versions.time_of(2, n) * 1.02
            assert versions.time_of(2, n) <= versions.time_of(1, n) * 1.02

    def test_v3_buys_real_application_speedup(self, versions):
        assert versions.app_gain_v3_over_v1(versions.sizes[-1]) > 0.3

    def test_better_kernel_earns_bigger_share(self, versions):
        assert versions.gtx_share[2] >= versions.gtx_share[0]

    def test_format(self, versions):
        assert "application-level gain" in gpu_kernel_version.format_result(
            versions
        )


class TestAspectRatio:
    @pytest.fixture(scope="class")
    def aspect(self, fast_config):
        return aspect_ratio.run(fast_config)

    def test_near_square_collapse_holds(self, aspect):
        """Section IV assumption: <5% spread within the 1:2..2:1 band."""
        assert aspect.worst_near_square < 0.05

    def test_extreme_strips_lose(self, aspect):
        assert aspect.worst_extreme > 2 * aspect.worst_near_square

    def test_format(self, aspect):
        assert "near-square" in aspect_ratio.format_result(aspect)


class TestCommAware:
    @pytest.fixture(scope="class")
    def comm(self, fast_config):
        return comm_aware.run(fast_config)

    def test_paper_bandwidth_untouched(self, comm):
        """At the paper's bandwidth the refinement changes nothing."""
        assert comm.blocks_moved[0] == 0
        assert comm.saving(comm.bandwidths_gbs[0]) == pytest.approx(0.0)

    def test_simplification_robust_at_40x_cost(self, comm):
        """Even at 40x the communication cost the gain stays negligible."""
        worst_bw = comm.bandwidths_gbs[-1]
        assert abs(comm.saving(worst_bw)) < 0.02

    def test_refined_never_meaningfully_worse(self, comm):
        for bw in comm.bandwidths_gbs:
            assert comm.saving(bw) > -0.02

    def test_format(self, comm):
        assert "bandwidth" in comm_aware.format_result(comm)
