"""Unit tests for the time-varying device speed model."""

import math

import numpy as np
import pytest

from repro.platform.drift import (
    STEADY,
    DeviceDrift,
    DriftModel,
    DriftSpec,
    parse_drift_spec,
)


class TestDeviceDrift:
    def test_default_profile_is_inert(self):
        assert STEADY.inert
        assert not STEADY.stochastic
        assert STEADY.throttle_envelope(1e9) == 1.0

    def test_hard_step_envelope(self):
        drift = DeviceDrift(throttle_t0_s=2.0, throttle_tau_s=0.0,
                            throttle_floor=0.5)
        assert drift.throttle_envelope(0.0) == 1.0
        assert drift.throttle_envelope(1.999) == 1.0
        assert drift.throttle_envelope(2.0) == 0.5
        assert drift.throttle_envelope(100.0) == 0.5

    def test_exponential_ramp_envelope(self):
        drift = DeviceDrift(throttle_t0_s=1.0, throttle_tau_s=2.0,
                            throttle_floor=0.25)
        assert drift.throttle_envelope(1.0) == 1.0  # decay starts at t0
        mid = drift.throttle_envelope(3.0)
        assert 0.25 < mid < 1.0
        assert mid == 0.25 + 0.75 * math.exp(-1.0)
        # monotone decay towards the floor
        times = [1.0, 2.0, 4.0, 8.0, 50.0]
        values = [drift.throttle_envelope(t) for t in times]
        assert values == sorted(values, reverse=True)
        assert drift.throttle_envelope(1e6) == pytest.approx(0.25)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"throttle_t0_s": -1.0},
            {"throttle_floor": 0.0},
            {"throttle_floor": 1.5},
            {"burst_prob": 1.5},
            {"burst_factor": 0.5},
            {"burst_len_s": 0.0},
            {"jitter_sigma": -0.1},
            {"jitter_window_s": 0.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            DeviceDrift(**kwargs)


class TestParseDriftSpec:
    def test_empty_spec_is_inert(self):
        spec = parse_drift_spec("")
        assert spec.rules == ()
        assert spec.inert
        assert spec.for_device("anything") is STEADY

    def test_full_grammar(self):
        spec = parse_drift_spec(
            "throttle:GeForce GTX680:t0=1.5,tau=0.3,floor=0.5; "
            "burst:cpu:p=0.05,x=2,len=0.5; jitter:*:sigma=0.01,w=2"
        )
        gtx = spec.for_device("GeForce GTX680")
        assert gtx.throttle_t0_s == 1.5
        assert gtx.throttle_tau_s == 0.3
        assert gtx.throttle_floor == 0.5
        cpu = spec.for_device("cpu")
        assert cpu.burst_prob == 0.05
        assert cpu.burst_factor == 2.0
        assert cpu.burst_len_s == 0.5
        other = spec.for_device("Tesla C870")
        assert other.jitter_sigma == 0.01
        assert other.jitter_window_s == 2.0

    def test_clauses_naming_same_device_merge(self):
        spec = parse_drift_spec(
            "throttle:gpu0:t0=5; jitter:gpu0:sigma=0.02"
        )
        drift = spec.for_device("gpu0")
        assert drift.throttle_t0_s == 5.0
        assert drift.jitter_sigma == 0.02
        assert len(spec.rules) == 1

    def test_match_precedence_exact_substring_wildcard(self):
        spec = parse_drift_spec(
            "jitter:*:sigma=0.3; throttle:GTX:t0=1; "
            "throttle:GeForce GTX680:t0=9"
        )
        assert spec.for_device("GeForce GTX680").throttle_t0_s == 9.0
        assert spec.for_device("GTX Titan").throttle_t0_s == 1.0
        assert spec.for_device("Tesla C870").jitter_sigma == 0.3

    @pytest.mark.parametrize(
        "text",
        [
            "throttle:gpu0",  # missing params section
            "warp:gpu0:p=1",  # unknown kind
            "throttle::t0=1",  # empty device
            "throttle:gpu0:tau=3",  # missing required t0
            "burst:gpu0:x=2",  # missing required p
            "jitter:gpu0:w=1",  # missing required sigma
            "throttle:gpu0:t0=1,volume=11",  # unknown parameter
            "throttle:gpu0:t0",  # not key=value
            "throttle:gpu0:t0=abc",  # not a number
        ],
    )
    def test_rejects_malformed_clauses(self, text):
        with pytest.raises(ValueError):
            parse_drift_spec(text)


class TestDriftModel:
    def test_same_seed_same_multipliers(self):
        spec = "jitter:*:sigma=0.1; burst:gpu0:p=0.5,x=3,len=1"
        a = DriftModel.from_spec(spec, seed=42)
        b = DriftModel.from_spec(spec, seed=42)
        for t in (0.0, 0.5, 1.0, 7.25):
            for dev in ("gpu0", "cpu1"):
                assert a.speed_multiplier(dev, t) == b.speed_multiplier(dev, t)

    def test_different_seeds_differ(self):
        spec = "jitter:*:sigma=0.1"
        a = DriftModel.from_spec(spec, seed=1)
        b = DriftModel.from_spec(spec, seed=2)
        assert a.speed_multiplier("gpu0", 0.0) != b.speed_multiplier("gpu0", 0.0)

    def test_query_order_independent(self):
        model = DriftModel.from_spec("jitter:*:sigma=0.2", seed=9)
        late = model.speed_multiplier("gpu0", 5.0)
        early = model.speed_multiplier("gpu0", 1.0)
        model2 = DriftModel.from_spec("jitter:*:sigma=0.2", seed=9)
        assert model2.speed_multiplier("gpu0", 1.0) == early
        assert model2.speed_multiplier("gpu0", 5.0) == late

    def test_inert_model_is_exactly_one(self):
        model = DriftModel.from_spec("", seed=3)
        assert model.inert
        assert model.speed_multiplier("gpu0", 123.0) == 1.0
        assert model.time_multiplier("gpu0", 123.0) == 1.0
        assert np.array_equal(
            model.speed_multipliers(["a", "b"], 4.0), np.ones(2)
        )

    def test_burst_stretches_timing_by_factor(self):
        # p=1: every window bursts; time multiplier == burst factor.
        model = DriftModel.from_spec("burst:gpu0:p=1,x=3,len=1", seed=5)
        assert model.speed_multiplier("gpu0", 0.5) == pytest.approx(1.0 / 3.0)
        assert model.time_multiplier("gpu0", 0.5) == pytest.approx(3.0)

    def test_jitter_constant_within_window(self):
        model = DriftModel.from_spec("jitter:gpu0:sigma=0.2,w=2", seed=5)
        assert model.speed_multiplier("gpu0", 0.1) == model.speed_multiplier(
            "gpu0", 1.9
        )
        assert model.speed_multiplier("gpu0", 0.1) != model.speed_multiplier(
            "gpu0", 2.1
        )

    def test_rejects_negative_time(self):
        model = DriftModel.from_spec("jitter:*:sigma=0.1", seed=5)
        with pytest.raises(ValueError):
            model.speed_multiplier("gpu0", -1.0)
        with pytest.raises(ValueError):
            model.speed_multipliers(["gpu0"], -1.0)


class TestScalarBatchBitIdentity:
    DEVICES = ["GeForce GTX680", "Tesla C870", "socket0", "socket1", "quiet"]
    SPEC = (
        "throttle:GTX680:t0=2,tau=3,floor=0.4; "
        "burst:Tesla C870:p=0.3,x=2.5,len=0.7; "
        "jitter:socket:sigma=0.05,w=1.5"
    )

    @pytest.mark.parametrize("t_s", [0.0, 0.35, 1.0, 2.0, 3.3, 17.77])
    def test_speed_multipliers_bit_identical(self, t_s):
        model = DriftModel.from_spec(self.SPEC, seed=77)
        scalar = np.array(
            [model.speed_multiplier(d, t_s) for d in self.DEVICES]
        )
        batch = model.speed_multipliers(self.DEVICES, t_s)
        assert np.array_equal(scalar, batch)

    @pytest.mark.parametrize("t_s", [0.0, 2.0, 9.5])
    def test_time_multipliers_bit_identical(self, t_s):
        model = DriftModel.from_spec(self.SPEC, seed=77)
        scalar = np.array(
            [model.time_multiplier(d, t_s) for d in self.DEVICES]
        )
        assert np.array_equal(scalar, model.time_multipliers(self.DEVICES, t_s))

    def test_batch_matches_scalar_with_all_kinds_on_one_device(self):
        spec = (
            "throttle:gpu0:t0=0,tau=4,floor=0.6; burst:gpu0:p=0.5,x=2,len=1; "
            "jitter:gpu0:sigma=0.1"
        )
        model = DriftModel.from_spec(spec, seed=13)
        for t_s in np.linspace(0.0, 12.0, 25):
            t = float(t_s)
            assert model.speed_multipliers(["gpu0"], t)[0] == \
                model.speed_multiplier("gpu0", t)
