"""Unit tests for the PCIe link model."""

import pytest

from repro.platform.memory import GpuMemoryModel
from repro.platform.pcie import PcieLink
from repro.platform.presets import geforce_gtx680


@pytest.fixture()
def link():
    gpu = geforce_gtx680()
    staging = GpuMemoryModel(gpu, 640).resident_capacity_blocks()
    return PcieLink(gpu, staging_blocks=staging)


class TestContiguous:
    def test_zero_bytes_free(self, link):
        assert link.contiguous_time(0) == 0.0

    def test_latency_plus_bandwidth(self, link):
        t = link.contiguous_time(6.4e9)
        assert t == pytest.approx(1.0 + link.gpu.pcie_latency_s)

    def test_monotone_in_bytes(self, link):
        assert link.contiguous_time(2e6) > link.contiguous_time(1e6)


class TestPitched:
    def test_pinned_speed_within_staging(self, link):
        bw = link.pitched_bandwidth_gbs(link.staging_blocks * 0.5)
        assert bw == link.gpu.pcie_pitched_pinned_gbs

    def test_pageable_cliff_past_staging(self, link):
        """The bandwidth collapse that creates Fig. 3's performance drop."""
        inside = link.pitched_bandwidth_gbs(link.staging_blocks)
        outside = link.pitched_bandwidth_gbs(link.staging_blocks * 1.01)
        assert outside < inside * 0.5

    def test_pageable_decays_with_footprint(self, link):
        bw1 = link.pitched_bandwidth_gbs(link.staging_blocks * 1.5)
        bw2 = link.pitched_bandwidth_gbs(link.staging_blocks * 3.0)
        assert bw2 < bw1

    def test_pitched_time_uses_footprint_bandwidth(self, link):
        nbytes = 1e8
        t_in = link.pitched_time(nbytes, link.staging_blocks * 0.5)
        t_out = link.pitched_time(nbytes, link.staging_blocks * 2.0)
        assert t_out > t_in

    def test_zero_bytes_free(self, link):
        assert link.pitched_time(0, 100) == 0.0


class TestConcurrentCopy:
    def test_idle_kernel_full_speed(self, link):
        assert link.concurrent_copy_factor(False) == 1.0

    def test_active_kernel_slows_copies(self, link):
        assert link.concurrent_copy_factor(True) == link.gpu.concurrent_copy_slowdown
        assert link.concurrent_copy_factor(True) <= 1.0
