"""Unit tests for automated device calibration."""

import dataclasses

import pytest

from repro.kernels.gemm_cpu import CpuGemmKernel
from repro.kernels.gemm_gpu import gpu_kernel
from repro.kernels.interface import kernel_speed_gflops
from repro.platform.calibration import (
    CalibrationTarget,
    calibrate_cpu,
    calibrate_gpu,
)
from repro.platform.contention import CpuGpuInterference
from repro.platform.device import SimulatedGpu, SimulatedSocket
from repro.platform.presets import geforce_gtx680, opteron_8439se
from repro.platform.spec import SocketSpec


def socket_speeds(cpu_spec, cores, sizes):
    socket = SimulatedSocket(
        name="truth",
        spec=SocketSpec(cpu=cpu_spec, cores=6, memory_gb=16.0),
        interference=CpuGpuInterference(),
        block_size=640,
    )
    kernel = CpuGemmKernel(socket, cores)
    return [kernel_speed_gflops(kernel, x) for x in sizes]


class TestCpuCalibration:
    def test_recovers_known_parameters(self):
        truth = dataclasses.replace(
            opteron_8439se(), peak_gflops=17.0, ramp_depth=0.25, ramp_blocks=12.0
        )
        sizes = [10, 30, 80, 200, 500, 900]
        targets = [
            CalibrationTarget(x, s)
            for x, s in zip(sizes, socket_speeds(truth, 6, sizes))
        ]
        start = opteron_8439se()  # wrong initial guess (peak 21, depth .35)
        tuned, report = calibrate_cpu(start, targets, active_cores=6)
        assert report.worst_relative_error < 0.02
        assert tuned.peak_gflops == pytest.approx(17.0, rel=0.05)

    def test_report_flags_bad_fit(self):
        """Targets violating the model family cannot be fitted well."""
        targets = [
            CalibrationTarget(10, 100.0),
            CalibrationTarget(100, 10.0),
            CalibrationTarget(1000, 300.0),
        ]
        _, report = calibrate_cpu(opteron_8439se(), targets, active_cores=6)
        assert not report.acceptable(0.10)

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            calibrate_cpu(
                opteron_8439se(), [CalibrationTarget(1, 1)], active_cores=6
            )


class TestGpuCalibration:
    def test_recovers_known_parameters(self):
        truth_spec = dataclasses.replace(
            geforce_gtx680(),
            peak_gflops=800.0,
            rate_half_blocks=90.0,
            pcie_pageable_gbs=1.4,
        )
        truth = SimulatedGpu(
            name="truth",
            spec=truth_spec,
            interference=CpuGpuInterference(),
            socket_cores=6,
            block_size=640,
        )
        kernel = gpu_kernel(truth, 3)
        sizes = [100, 400, 900, 1400, 2200, 3600]
        targets = [
            CalibrationTarget(x, kernel_speed_gflops(kernel, x)) for x in sizes
        ]
        tuned, report = calibrate_gpu(geforce_gtx680(), targets)
        assert report.worst_relative_error < 0.05
        assert tuned.peak_gflops == pytest.approx(800.0, rel=0.15)
        assert tuned.pcie_pageable_gbs == pytest.approx(1.4, rel=0.2)

    def test_preset_is_self_consistent(self, gtx680):
        """Calibrating against the preset's own curve returns the preset."""
        kernel = gpu_kernel(gtx680, 3)
        sizes = [200, 800, 1400, 2600, 4000]
        targets = [
            CalibrationTarget(x, kernel_speed_gflops(kernel, x)) for x in sizes
        ]
        tuned, report = calibrate_gpu(geforce_gtx680(), targets)
        assert report.worst_relative_error < 1e-4

    def test_target_validation(self):
        with pytest.raises(ValueError):
            CalibrationTarget(-1, 10)
        with pytest.raises(ValueError):
            calibrate_gpu(geforce_gtx680(), [CalibrationTarget(1, 1)])
