"""Unit tests for memory-hierarchy models."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.memory import CoreCacheModel, GpuMemoryModel
from repro.platform.presets import geforce_gtx680, opteron_8439se, tesla_c870


class TestCoreCacheModel:
    def setup_method(self):
        self.model = CoreCacheModel(opteron_8439se())

    def test_ramp_up_with_size(self):
        assert self.model.efficiency(1) < self.model.efficiency(50)

    def test_plateau_near_one(self):
        assert self.model.efficiency(100) == pytest.approx(1.0, abs=0.02)

    def test_droop_past_pressure_threshold(self):
        assert self.model.efficiency(400) < self.model.efficiency(100)

    def test_efficiency_bounded(self):
        for a in (0, 1, 10, 100, 1000, 10000):
            assert 0.0 < self.model.efficiency(a) <= 1.0

    def test_core_rate_scales_with_peak(self):
        assert self.model.core_rate_gflops(100) == pytest.approx(
            opteron_8439se().peak_gflops * self.model.efficiency(100)
        )

    @given(st.floats(min_value=0, max_value=5000))
    @settings(max_examples=50)
    def test_efficiency_always_positive(self, area):
        assert self.model.efficiency(area) > 0.0


class TestGpuMemoryModel:
    def test_block_bytes(self):
        m = GpuMemoryModel(geforce_gtx680(), 640)
        assert m.block_bytes == 640 * 640 * 4

    def test_gtx680_capacity_near_papers_limit(self):
        """Fig. 3's memory-limit line sits around 1200 blocks."""
        m = GpuMemoryModel(geforce_gtx680(), 640)
        assert 1000 <= m.resident_capacity_blocks() <= 1300

    def test_c870_capacity_between_table3_allocations(self):
        """At 60x60 the C870's 657-block share is resident, at 70x70 the
        806-block share is not (Table III discussion)."""
        m = GpuMemoryModel(tesla_c870(), 640)
        cap = m.resident_capacity_blocks()
        assert 657 <= cap <= 806

    def test_fits_resident_boundary(self):
        m = GpuMemoryModel(geforce_gtx680(), 640)
        cap = m.resident_capacity_blocks()
        assert m.fits_resident(cap * 0.999)
        assert not m.fits_resident(cap * 1.001)

    def test_capacity_plus_pivots_fits_usable(self):
        m = GpuMemoryModel(geforce_gtx680(), 640)
        cap = m.resident_capacity_blocks()
        assert cap + m.pivot_blocks(cap) == pytest.approx(m.usable_blocks)

    def test_out_of_core_tiles_smaller_than_capacity(self):
        m = GpuMemoryModel(geforce_gtx680(), 640)
        tile = m.out_of_core_tile_blocks(buffered_tiles=2)
        assert 0 < tile < m.resident_capacity_blocks()

    def test_more_buffers_mean_smaller_tiles(self):
        m = GpuMemoryModel(geforce_gtx680(), 640)
        assert m.out_of_core_tile_blocks(3) < m.out_of_core_tile_blocks(2)

    def test_buffered_tiles_fit_usable_memory(self):
        m = GpuMemoryModel(geforce_gtx680(), 640)
        for k in (1, 2, 3, 4):
            t = m.out_of_core_tile_blocks(k)
            assert k * t + 4 * math.sqrt(t) <= m.usable_blocks * (1 + 1e-9)

    def test_pivot_blocks_scale_with_sqrt(self):
        m = GpuMemoryModel(geforce_gtx680(), 640)
        assert m.pivot_blocks(400) == pytest.approx(2 * 20.0)

    def test_rejects_bad_buffer_count(self):
        m = GpuMemoryModel(geforce_gtx680(), 640)
        with pytest.raises(ValueError):
            m.out_of_core_tile_blocks(0)
