"""Unit tests for the simulated devices."""

import pytest

from repro.platform.device import build_devices
from repro.util.units import gemm_kernel_flops


class TestBuildDevices:
    def test_counts(self, node, devices):
        sockets, gpus = devices
        assert len(sockets) == node.num_sockets
        assert len(gpus) == len(node.gpus)

    def test_gpu_order_matches_attachments(self, gpus):
        assert "Tesla C870" in gpus[0].name
        assert "GTX680" in gpus[1].name


class TestSimulatedCore:
    def test_kernel_time_positive_and_linear_scaling(self, sockets):
        core = sockets[0].core(0)
        t1 = core.kernel_time(10.0)
        t2 = core.kernel_time(20.0)
        assert 0 < t1 < t2

    def test_zero_area_zero_time(self, sockets):
        assert sockets[0].core(0).kernel_time(0.0) == 0.0

    def test_contention_slows_core(self, sockets):
        core = sockets[0].core(0)
        assert core.kernel_time(50, active_cores=6) > core.kernel_time(
            50, active_cores=1
        )

    def test_gpu_activity_slows_core_slightly(self, sockets):
        core = sockets[0].core(0)
        slow = core.kernel_time(50, 5, gpu_active=True)
        fast = core.kernel_time(50, 5, gpu_active=False)
        assert fast < slow < fast * 1.05

    def test_invalid_core_index(self, sockets):
        with pytest.raises(ValueError):
            sockets[0].core(6)


class TestSimulatedSocket:
    def test_speed_increases_with_cores(self, sockets):
        s = sockets[0]
        speeds = [s.speed_gflops(600, c) for c in range(1, 7)]
        assert all(a < b for a, b in zip(speeds, speeds[1:]))

    def test_speed_is_flops_over_time(self, sockets):
        s = sockets[0]
        x = 300.0
        t = s.kernel_time(x, 6)
        assert s.speed_gflops(x, 6) == pytest.approx(
            gemm_kernel_flops(x, s.block_size) / t / 1e9
        )

    def test_default_uses_all_cores(self, sockets):
        s = sockets[0]
        assert s.kernel_time(120.0) == s.kernel_time(120.0, s.spec.cores)

    def test_rejects_too_many_cores(self, sockets):
        with pytest.raises(ValueError):
            sockets[0].kernel_time(10.0, active_cores=7)


class TestSimulatedGpu:
    def test_kernel_rate_saturates(self, gtx680):
        r_small = gtx680.kernel_rate_gflops(10)
        r_big = gtx680.kernel_rate_gflops(1000)
        assert r_small < r_big < gtx680.spec.peak_gflops

    def test_misalignment_penalty(self, gtx680):
        aligned = gtx680.kernel_rate_gflops(500, aligned=True)
        misaligned = gtx680.kernel_rate_gflops(500, aligned=False)
        assert misaligned == pytest.approx(
            aligned / gtx680.spec.misalignment_penalty
        )

    def test_compute_time_zero_area(self, gtx680):
        assert gtx680.compute_time(0.0) == 0.0

    def test_contention_slows_gpu(self, gtx680):
        base = gtx680.compute_time(500, busy_cpu_cores=0)
        shared = gtx680.compute_time(500, busy_cpu_cores=5)
        assert shared > base
        # within the paper's 7-15% band
        assert 1.05 < shared / base < 1.20

    def test_pivot_upload_scales_with_sqrt_area(self, gtx680):
        t400 = gtx680.upload_pivots_time(400)
        t1600 = gtx680.upload_pivots_time(1600)
        # pivot blocks double when area quadruples
        assert t1600 == pytest.approx(2 * t400, rel=0.01)

    def test_transfer_c_footprint_matters(self, gtx680):
        cap = gtx680.memory.resident_capacity_blocks()
        fast = gtx680.transfer_c_time(100, footprint_blocks=cap * 0.5)
        slow = gtx680.transfer_c_time(100, footprint_blocks=cap * 2.0)
        assert slow > fast

    def test_concurrent_copy_slower(self, gtx680):
        idle = gtx680.transfer_c_time(100, 2000, kernel_active=False)
        busy = gtx680.transfer_c_time(100, 2000, kernel_active=True)
        assert busy >= idle
