"""Property tests: FaultPlan determinism and recovery invariants (hypothesis).

The fault plan is the seed of everything the fault-tolerance machinery
does — if two identically-seeded plans ever disagreed, retries, degraded
partitions and the recovery makespan would all fork.  These properties
pin the contract for arbitrary seeds, probabilities and contexts.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.platform.faults import FaultPlan, FaultSpec, DeviceFaults

pytestmark = pytest.mark.property

seeds = st.integers(min_value=0, max_value=2**32 - 1)
probs = st.floats(min_value=0.0, max_value=1.0)
device_names = st.sampled_from(
    ["gpu0", "Tesla C870", "GeForce GTX680", "socket0:c5", "a b c"]
)


def _spec(device, fail_prob, spike_prob):
    return FaultSpec(
        rules=(
            (device, DeviceFaults(fail_prob=fail_prob, spike_prob=spike_prob)),
        )
    )


@given(seeds, probs, probs, device_names, st.integers(min_value=1, max_value=30))
def test_same_seed_yields_identical_sequences(seed, fail_p, spike_p, device, n):
    spec = _spec(device, fail_p, spike_p)
    a = FaultPlan.from_spec(spec, seed=seed)
    b = FaultPlan.from_spec(spec, seed=seed)
    for i in range(n):
        assert a.kernel_outcome(device, f"r{i}", "a0") == b.kernel_outcome(
            device, f"r{i}", "a0"
        )


@given(seeds, probs, probs, device_names, st.integers(min_value=1, max_value=30))
def test_batch_bit_identical_to_scalar(seed, fail_p, spike_p, device, n):
    spec = _spec(device, fail_p, spike_p)
    plan = FaultPlan.from_spec(spec, seed=seed)
    context = ("x12.0", "busy0")
    keys = [(f"r{i}", "a0") for i in range(n)]
    failed, factors, _ = plan.kernel_outcomes_batch(device, context, keys)
    for i, key in enumerate(keys):
        scalar = plan.kernel_outcome(device, *context, *key)
        assert bool(failed[i]) == scalar.failed
        assert float(factors[i]) == scalar.spike_factor


@given(seeds, st.floats(min_value=0.01, max_value=0.99))
def test_per_device_streams_are_disjoint(seed, fail_p):
    # one device's fault draws never depend on another's presence in the spec
    lone = FaultPlan.from_spec(_spec("gpu0", fail_p, 0.0), seed=seed)
    both = FaultPlan.from_spec(
        FaultSpec(
            rules=(
                ("gpu0", DeviceFaults(fail_prob=fail_p)),
                ("gpu1", DeviceFaults(fail_prob=fail_p)),
            )
        ),
        seed=seed,
    )
    for i in range(20):
        assert lone.kernel_outcome("gpu0", f"r{i}") == both.kernel_outcome(
            "gpu0", f"r{i}"
        )


@given(seeds, probs)
def test_extreme_probabilities_are_certain(seed, spike_p):
    always = FaultPlan.from_spec(_spec("d", 1.0, spike_p), seed=seed)
    never = FaultPlan.from_spec(_spec("d", 0.0, 0.0), seed=seed)
    for i in range(10):
        assert always.kernel_outcome("d", f"r{i}").failed
        assert never.kernel_outcome("d", f"r{i}").clean
