"""Property tests: batch noise perturbation ≡ the scalar path (hypothesis).

``NoiseModel.perturb_batch`` keeps its per-repetition ``Generator`` loop
on purpose — each repetition draws from its own BLAKE2-seeded PCG64
stream, and vectorising across distinct bit-generators cannot reproduce
the scalar draws (see the comment in
:meth:`repro.platform.noise.NoiseModel.perturb_batch`).  These
properties lock the contract that justifies the loop: for arbitrary
seeds, sigmas and outlier settings, the batch is bit-identical to the
scalar walk — including the outlier branch.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.noise import NoiseModel
from repro.util.rng import RngStream

pytestmark = pytest.mark.property

seeds = st.integers(min_value=0, max_value=2**32 - 1)
sigmas = st.floats(min_value=0.0, max_value=0.5)
outlier_probs = st.floats(min_value=0.0, max_value=1.0)
outlier_factors = st.floats(min_value=1.0, max_value=50.0)
ideals = st.floats(min_value=0.0, max_value=1e3)
rep_counts = st.integers(min_value=1, max_value=20)


@settings(max_examples=60, deadline=None)
@given(seeds, sigmas, outlier_probs, outlier_factors, ideals, rep_counts)
def test_perturb_batch_bit_identical_to_scalar_with_outliers(
    seed, sigma, outlier_prob, outlier_factor, ideal, reps
):
    noise = NoiseModel(
        RngStream(seed).child("bench"),
        sigma=sigma,
        outlier_prob=outlier_prob,
        outlier_factor=outlier_factor,
    )
    context = ("kernel gpu0", "x123.0", "busy2")
    rep_keys = [f"r{r}" for r in range(reps)]
    batch = noise.perturb_batch(ideal, context, rep_keys)
    scalar = np.array(
        [noise.perturb(ideal, *context, key) for key in rep_keys]
    )
    assert np.array_equal(batch, scalar)


@settings(max_examples=30, deadline=None)
@given(seeds, sigmas, ideals, rep_counts)
def test_perturb_batch_bit_identical_without_outliers(seed, sigma, ideal, reps):
    noise = NoiseModel(RngStream(seed).child("bench"), sigma=sigma)
    rep_keys = [f"r{r}" for r in range(reps)]
    batch = noise.perturb_batch(ideal, ("dev", "x1.0"), rep_keys)
    scalar = np.array(
        [noise.perturb(ideal, "dev", "x1.0", key) for key in rep_keys]
    )
    assert np.array_equal(batch, scalar)
