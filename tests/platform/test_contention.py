"""Unit tests for the contention models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.contention import CpuGpuInterference, SocketContention


class TestSocketContention:
    def test_single_core_full_efficiency(self):
        assert SocketContention(0.04).efficiency(1) == 1.0

    def test_efficiency_decreases_with_cores(self):
        model = SocketContention(0.04)
        effs = [model.efficiency(c) for c in range(1, 7)]
        assert all(a > b for a, b in zip(effs, effs[1:]))

    def test_socket_scaling_increases_with_cores(self):
        """More active cores always increase aggregate speed (Fig. 2)."""
        model = SocketContention(0.04)
        scales = [model.socket_scaling(c) for c in range(1, 7)]
        assert all(a < b for a, b in zip(scales, scales[1:]))

    def test_sublinear_scaling(self):
        model = SocketContention(0.04)
        assert model.socket_scaling(6) < 6.0

    def test_zero_alpha_is_linear(self):
        model = SocketContention(0.0)
        assert model.socket_scaling(6) == 6.0

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            SocketContention().efficiency(0)

    @given(st.floats(min_value=0.0, max_value=0.5), st.integers(1, 64))
    @settings(max_examples=50)
    def test_efficiency_in_unit_interval(self, alpha, cores):
        eff = SocketContention(alpha).efficiency(cores)
        assert 0.0 < eff <= 1.0


class TestCpuGpuInterference:
    def test_idle_cpu_means_no_gpu_drop(self):
        model = CpuGpuInterference(gpu_drop_max=0.11)
        assert model.gpu_speed_factor(0, 6) == 1.0

    def test_full_socket_gives_max_drop(self):
        model = CpuGpuInterference(gpu_drop_max=0.11)
        assert model.gpu_speed_factor(5, 6) == pytest.approx(0.89)

    def test_drop_scales_with_busy_cores(self):
        model = CpuGpuInterference(gpu_drop_max=0.11)
        factors = [model.gpu_speed_factor(c, 6) for c in range(6)]
        assert all(a >= b for a, b in zip(factors, factors[1:]))

    def test_drop_saturates(self):
        model = CpuGpuInterference(gpu_drop_max=0.11)
        assert model.gpu_speed_factor(10, 6) == pytest.approx(0.89)

    def test_cpu_factor(self):
        model = CpuGpuInterference(cpu_drop=0.015)
        assert model.cpu_speed_factor(False) == 1.0
        assert model.cpu_speed_factor(True) == pytest.approx(0.985)

    def test_paper_band(self):
        """The default drop lands inside the paper's 7-15% range."""
        model = CpuGpuInterference()
        drop = 1.0 - model.gpu_speed_factor(5, 6)
        assert 0.07 <= drop <= 0.15

    def test_rejects_negative_busy_cores(self):
        with pytest.raises(ValueError):
            CpuGpuInterference().gpu_speed_factor(-1, 6)
