"""Calibration tests: the preset node must land in the paper's bands.

These are the contract between the simulated substrate and the
reproduction experiments — if a refactor moves a curve out of its band,
the failure points here first.
"""

import pytest

from repro.kernels.gemm_cpu import CpuGemmKernel
from repro.kernels.gemm_gpu import gpu_kernel
from repro.kernels.interface import kernel_speed_gflops
from repro.platform.presets import cpu_only_node, ig_icl_node


class TestNodeShape:
    def test_table1_inventory(self, node):
        assert node.num_sockets == 4
        assert node.socket.cores == 6
        assert len(node.gpus) == 2
        names = {a.gpu.name for a in node.gpus}
        assert names == {"GeForce GTX680", "Tesla C870"}

    def test_gpus_on_distinct_sockets(self, node):
        assert len({a.socket_index for a in node.gpus}) == 2

    def test_cpu_only_variant(self):
        n = cpu_only_node()
        assert n.gpus == ()
        assert n.total_cores == 24

    def test_block_size_configurable(self):
        assert ig_icl_node(block_size=64).block_size == 64


class TestSocketCalibration:
    def test_s6_plateau_band(self, sockets):
        """Fig. 2: s6 plateaus near 105 GFlops."""
        kernel = CpuGemmKernel(sockets[2], 6)
        plateau = max(
            kernel_speed_gflops(kernel, x) for x in (300, 500, 700, 900)
        )
        assert 95 <= plateau <= 115

    def test_s5_below_s6(self, sockets):
        s5 = CpuGemmKernel(sockets[0], 5)
        s6 = CpuGemmKernel(sockets[2], 6)
        for x in (120, 400, 900):
            assert kernel_speed_gflops(s5, x) < kernel_speed_gflops(s6, x)

    def test_24_cores_finish_40x40_in_table2_ballpark(self, sockets):
        """Table II col 1: ~100 s for the 40x40-block homogeneous run."""
        kernel = CpuGemmKernel(sockets[2], 6)
        per_socket = 1600.0 / 4.0
        total = 40 * kernel.run_time(per_socket)
        assert 70 <= total <= 120


class TestGpuCalibration:
    def test_gtx680_nine_times_socket_in_core(self, sockets, gtx680):
        """Section VI: G1 ~9x a socket while resident."""
        g = gpu_kernel(gtx680, 3)
        s6 = CpuGemmKernel(sockets[2], 6)
        ratio = kernel_speed_gflops(g, 1000) / kernel_speed_gflops(s6, 102)
        assert 7.5 <= ratio <= 11.5

    def test_gtx680_four_to_six_times_out_of_core(self, sockets, gtx680):
        """Section VI: decaying to ~6x..4x for 50x50..70x70 totals."""
        g = gpu_kernel(gtx680, 3)
        s6 = CpuGemmKernel(sockets[2], 6)
        r50 = kernel_speed_gflops(g, 1250) / kernel_speed_gflops(s6, 222)
        r70 = kernel_speed_gflops(g, 2250) / kernel_speed_gflops(s6, 504)
        assert r50 > r70
        assert 3.2 <= r70 <= 6.0
        assert 4.0 <= r50 <= 7.5

    def test_c870_twice_socket_in_core(self, sockets, c870):
        """Table III 40x40: G2 ~2x a socket."""
        g = gpu_kernel(c870, 3)
        s6 = CpuGemmKernel(sockets[2], 6)
        ratio = kernel_speed_gflops(g, 210) / kernel_speed_gflops(s6, 102)
        assert 1.6 <= ratio <= 2.6

    def test_version2_doubles_version1_resident(self, gtx680):
        v1 = gpu_kernel(gtx680, 1)
        v2 = gpu_kernel(gtx680, 2)
        ratio = kernel_speed_gflops(v2, 1000) / kernel_speed_gflops(v1, 1000)
        assert 1.6 <= ratio <= 2.6

    def test_version3_gain_past_limit(self, gtx680):
        v2 = gpu_kernel(gtx680, 2)
        v3 = gpu_kernel(gtx680, 3)
        x = gpu_kernel(gtx680, 3).memory_limit_blocks * 1.4
        gain = kernel_speed_gflops(v3, x) / kernel_speed_gflops(v2, x) - 1
        assert 0.15 <= gain <= 0.9

    def test_c870_overlap_gain_smaller_than_gtx680(self, gtx680, c870):
        """Fig. 4b: the single-DMA C870 benefits less from overlap."""

        def gain(gpu):
            v2 = gpu_kernel(gpu, 2)
            v3 = gpu_kernel(gpu, 3)
            x = v3.memory_limit_blocks * 1.6
            return kernel_speed_gflops(v3, x) / kernel_speed_gflops(v2, x)

        assert gain(c870) < gain(gtx680)
        assert gain(c870) > 1.0  # still some benefit
