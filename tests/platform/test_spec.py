"""Unit tests for hardware specification dataclasses."""

import pytest

from repro.platform.presets import geforce_gtx680, opteron_8439se, tesla_c870
from repro.platform.spec import (
    CpuSpec,
    GpuAttachment,
    GpuSpec,
    NodeSpec,
    SocketSpec,
)


def _socket(cores=6):
    return SocketSpec(cpu=opteron_8439se(), cores=cores, memory_gb=16.0)


class TestCpuSpec:
    def test_valid(self):
        spec = opteron_8439se()
        assert spec.peak_gflops > 0

    def test_rejects_full_ramp(self):
        with pytest.raises(ValueError, match="ramp_depth"):
            CpuSpec(name="x", clock_ghz=1.0, peak_gflops=10.0, ramp_depth=1.0)

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(ValueError):
            CpuSpec(name="x", clock_ghz=0.0, peak_gflops=10.0)


class TestGpuSpec:
    def test_usable_memory(self):
        gpu = geforce_gtx680()
        assert gpu.usable_memory_mb == pytest.approx(
            gpu.memory_mb - gpu.reserved_mb
        )

    def test_rejects_reserve_exceeding_memory(self):
        with pytest.raises(ValueError, match="reserved_mb"):
            GpuSpec(
                name="x",
                clock_mhz=1.0,
                cuda_cores=1,
                memory_mb=100.0,
                mem_bandwidth_gbs=1.0,
                peak_gflops=1.0,
                reserved_mb=100.0,
            )

    def test_rejects_bad_dma_count(self):
        with pytest.raises(ValueError, match="dma_engines"):
            GpuSpec(
                name="x",
                clock_mhz=1.0,
                cuda_cores=1,
                memory_mb=100.0,
                mem_bandwidth_gbs=1.0,
                peak_gflops=1.0,
                reserved_mb=10.0,
                dma_engines=3,
            )

    def test_dma_engines_of_presets(self):
        assert geforce_gtx680().dma_engines == 2
        assert tesla_c870().dma_engines == 1


class TestNodeSpec:
    def test_total_and_available_cores(self):
        node = NodeSpec(
            name="n",
            socket=_socket(),
            num_sockets=4,
            gpus=(GpuAttachment(tesla_c870(), 0),),
        )
        assert node.total_cores == 24
        assert node.cpu_cores_available() == 23

    def test_rejects_gpu_on_missing_socket(self):
        with pytest.raises(ValueError, match="socket 5"):
            NodeSpec(
                name="n",
                socket=_socket(),
                num_sockets=2,
                gpus=(GpuAttachment(tesla_c870(), 5),),
            )

    def test_rejects_gpus_saturating_a_socket(self):
        attachments = tuple(
            GpuAttachment(tesla_c870(), 0) for _ in range(6)
        )
        with pytest.raises(ValueError, match="dedicated"):
            NodeSpec(name="n", socket=_socket(), num_sockets=1, gpus=attachments)

    def test_gpus_on_socket(self):
        node = NodeSpec(
            name="n",
            socket=_socket(),
            num_sockets=2,
            gpus=(
                GpuAttachment(tesla_c870(), 0),
                GpuAttachment(geforce_gtx680(), 1),
            ),
        )
        assert len(node.gpus_on_socket(0)) == 1
        assert node.gpus_on_socket(0)[0].gpu.name == "Tesla C870"
        assert node.gpus_on_socket(1)[0].gpu.name == "GeForce GTX680"

    def test_rejects_interference_fraction_of_one(self):
        with pytest.raises(ValueError):
            NodeSpec(
                name="n",
                socket=_socket(),
                num_sockets=1,
                gpu_interference_drop=1.0,
            )
