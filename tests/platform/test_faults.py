"""Deterministic fault injection: spec grammar, seeding, batch equivalence."""

import pickle

import numpy as np
import pytest

from repro.platform.faults import (
    HEALTHY,
    DeviceDrop,
    DeviceFaults,
    FaultPlan,
    FaultSpec,
    KernelFaultError,
    RetryPolicy,
    parse_fault_spec,
)


class TestSpecGrammar:
    def test_full_spec_round_trip(self):
        spec = parse_fault_spec(
            "fail:GeForce GTX680:p=0.05,code=13; spike:*:p=0.01,x=8; "
            "drop:Tesla C870:t=1.5"
        )
        gtx = spec.for_device("GeForce GTX680")
        assert gtx.fail_prob == 0.05
        assert gtx.error_code == 13
        anything = spec.for_device("socket0:c5")
        assert anything.spike_prob == 0.01
        assert anything.spike_factor == 8.0
        assert spec.drops() == (DeviceDrop(time_s=1.5, device="Tesla C870"),)

    def test_empty_spec_is_inert(self):
        spec = parse_fault_spec("")
        assert spec.inert
        assert spec.for_device("anything") is HEALTHY

    def test_same_device_clauses_merge(self):
        spec = parse_fault_spec("fail:gpu0:p=0.2; spike:gpu0:p=0.1,x=4; drop:gpu0:t=2")
        faults = spec.for_device("gpu0")
        assert faults.fail_prob == 0.2
        assert faults.spike_prob == 0.1
        assert faults.spike_factor == 4.0
        assert faults.drop_time_s == 2.0

    def test_substring_matches_kernel_names(self):
        # kernel names embed their device; a rule naming the bare device
        # must reach the kernel's invocations
        spec = parse_fault_spec("fail:Tesla C870:p=1")
        assert spec.for_device("gpu-gemm-v3[ig.icl.utk.edu.Tesla C870]").fail_prob == 1.0
        assert spec.for_device("gpu-gemm-v3[ig.icl.utk.edu.GeForce GTX680]").inert

    def test_exact_match_beats_wildcard(self):
        spec = parse_fault_spec("fail:*:p=1; fail:gpu0:p=0")
        assert spec.for_device("gpu0").fail_prob == 0.0
        assert spec.for_device("gpu1").fail_prob == 1.0

    @pytest.mark.parametrize(
        "bad",
        [
            "bogus",
            "explode:gpu0:p=1",
            "fail::p=1",
            "fail:gpu0:code=13",  # missing p
            "spike:gpu0:x=4",  # missing p
            "drop:gpu0:p=1",  # wrong param
            "drop:*:t=1",  # wildcard drop
            "fail:gpu0:p=oops",
            "fail:gpu0:p",
        ],
    )
    def test_bad_clauses_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_device_faults_validation(self):
        with pytest.raises(ValueError):
            DeviceFaults(fail_prob=1.5)
        with pytest.raises(ValueError):
            DeviceFaults(spike_factor=0.5)
        with pytest.raises(ValueError):
            DeviceDrop(time_s=-1.0, device="gpu0")
        with pytest.raises(ValueError, match="concrete device"):
            DeviceDrop(time_s=1.0, device="*")


class TestRetryPolicy:
    def test_exponential_backoff(self):
        retry = RetryPolicy(max_retries=3, backoff_base_s=0.002, backoff_factor=2.0)
        assert retry.backoff_s(1) == 0.002
        assert retry.backoff_s(2) == 0.004
        assert retry.backoff_s(3) == 0.008

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0)


class TestFaultPlanDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultPlan.from_spec("fail:gpu:p=0.3; spike:gpu:p=0.2,x=5", seed=11)
        b = FaultPlan.from_spec("fail:gpu:p=0.3; spike:gpu:p=0.2,x=5", seed=11)
        outcomes_a = [a.kernel_outcome("gpu", "x10", f"r{i}", "a0") for i in range(40)]
        outcomes_b = [b.kernel_outcome("gpu", "x10", f"r{i}", "a0") for i in range(40)]
        assert outcomes_a == outcomes_b
        assert any(o.failed for o in outcomes_a)
        assert any(o.spike_factor > 1.0 for o in outcomes_a)

    def test_different_seeds_differ(self):
        a = FaultPlan.from_spec("fail:gpu:p=0.5", seed=1)
        b = FaultPlan.from_spec("fail:gpu:p=0.5", seed=2)
        seq_a = [a.kernel_outcome("gpu", f"r{i}").failed for i in range(64)]
        seq_b = [b.kernel_outcome("gpu", f"r{i}").failed for i in range(64)]
        assert seq_a != seq_b

    def test_attempts_draw_independently(self):
        # a rep that fails on attempt 0 can succeed on attempt 1 — the
        # attempt is part of the stream path
        plan = FaultPlan.from_spec("fail:gpu:p=0.5", seed=3)
        flips = [
            (
                plan.kernel_outcome("gpu", f"r{i}", "a0").failed,
                plan.kernel_outcome("gpu", f"r{i}", "a1").failed,
            )
            for i in range(64)
        ]
        assert any(first and not second for first, second in flips)

    def test_inert_plan_never_hashes(self):
        plan = FaultPlan.from_spec("", seed=1)
        assert plan.inert
        assert plan.kernel_outcome("gpu", "r0").clean

    def test_batch_bit_identical_to_scalar(self):
        plan = FaultPlan.from_spec("fail:gpu:p=0.3,code=13; spike:gpu:p=0.2,x=6", seed=9)
        context = ("x50.0", "busy2")
        rep_keys = [(f"r{i}", "a0") for i in range(50)]
        failed, factors, code = plan.kernel_outcomes_batch("gpu", context, rep_keys)
        assert code == 13
        for i, key in enumerate(rep_keys):
            scalar = plan.kernel_outcome("gpu", *context, *key)
            assert bool(failed[i]) == scalar.failed
            assert float(factors[i]) == scalar.spike_factor
        assert failed.any() and (factors > 1.0).any()
        # spikes never land on failed entries (the scalar path short-circuits)
        assert not np.any(failed & (factors > 1.0))

    def test_drops_sorted_by_time(self):
        plan = FaultPlan.from_spec("drop:b:t=2; drop:a:t=1", seed=1)
        assert plan.device_drops() == (
            DeviceDrop(time_s=1.0, device="a"),
            DeviceDrop(time_s=2.0, device="b"),
        )


class TestKernelFaultError:
    def test_message_carries_device_code_context(self):
        err = KernelFaultError("gpu0", 13, ("x50.0", "r2", "a1"))
        assert "gpu0" in str(err)
        assert "error code 13" in str(err)
        assert "x50.0/r2/a1" in str(err)
        assert err.device == "gpu0"
        assert err.code == 13

    def test_pickle_round_trip(self):
        # pooled orchestrator workers send this exception across a
        # ProcessPoolExecutor; a lossy reduce would break the whole pool
        err = KernelFaultError("gpu0", 13, ("x50.0", "r2", "a1"))
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, KernelFaultError)
        assert (clone.device, clone.code, clone.context) == (
            err.device,
            err.code,
            err.context,
        )
        assert str(clone) == str(err)


class TestFaultSpecEquality:
    def test_specs_are_value_objects(self):
        assert FaultSpec() == parse_fault_spec("")
        assert parse_fault_spec("fail:g:p=0.1") == parse_fault_spec("fail:g:p=0.1")

    def test_text_and_parsed_spec_build_the_same_plan(self):
        a = FaultPlan.from_spec("fail:g:p=0.1", seed=4)
        b = FaultPlan.from_spec(parse_fault_spec("fail:g:p=0.1"), seed=4)
        assert a.spec == b.spec
        assert (a.rng.seed, a.rng.path) == (b.rng.seed, b.rng.path)
