"""Unit tests for the measurement noise model."""

import statistics

import pytest

from repro.platform.noise import NoiseModel
from repro.util.rng import RngStream


@pytest.fixture()
def noise():
    return NoiseModel(RngStream(99), sigma=0.05)


class TestNoiseModel:
    def test_reproducible_for_same_context(self, noise):
        a = noise.perturb(1.0, "dev", 100, 0)
        b = noise.perturb(1.0, "dev", 100, 0)
        assert a == b

    def test_different_repetitions_differ(self, noise):
        a = noise.perturb(1.0, "dev", 100, 0)
        b = noise.perturb(1.0, "dev", 100, 1)
        assert a != b

    def test_zero_sigma_identity(self):
        quiet = NoiseModel(RngStream(1), sigma=0.0)
        assert quiet.perturb(1.23, "x") == 1.23

    def test_zero_time_unperturbed(self, noise):
        assert noise.perturb(0.0, "x") == 0.0

    def test_rejects_negative_time(self, noise):
        with pytest.raises(ValueError):
            noise.perturb(-1.0, "x")

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            NoiseModel(RngStream(1), sigma=-0.1)

    def test_multiplicative_and_positive(self, noise):
        values = [noise.perturb(2.0, "d", i) for i in range(200)]
        assert all(v > 0 for v in values)
        # median of the multiplicative factor is ~1
        assert statistics.median(values) == pytest.approx(2.0, rel=0.05)

    def test_spread_matches_sigma_roughly(self, noise):
        import math

        logs = [math.log(noise.perturb(1.0, "d", i)) for i in range(500)]
        assert statistics.pstdev(logs) == pytest.approx(0.05, rel=0.25)

    def test_quiet_copy(self, noise):
        q = noise.quiet()
        assert q.sigma == 0.0
        assert noise.sigma == 0.05
