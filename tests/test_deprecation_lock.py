"""No in-tree code may use the deprecated ``repro.api.partition`` shim.

The shim exists for external callers only (it warns once and forwards to
:class:`repro.api.Solver`).  This AST scan locks production code,
examples, benchmarks, and tools to the supported API: importing
``partition`` from ``repro.api`` or touching an ``api.partition`` /
``repro.api.partition`` attribute anywhere in-tree fails the suite.
Tests are exempt — the shim's own coverage lives there.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

SCANNED_DIRS = ("src", "examples", "benchmarks", "tools")

#: The shim's own definition site — the one legitimate mention.
ALLOWED = {REPO / "src" / "repro" / "api.py"}


def _python_files() -> list[Path]:
    files: list[Path] = []
    for name in SCANNED_DIRS:
        root = REPO / name
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
    return files


def _attr_chain(node: ast.Attribute) -> str:
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    return ".".join(reversed(parts))


def _shim_uses(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    uses: list[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "repro.api" and any(
                alias.name == "partition" for alias in node.names
            ):
                uses.append(
                    f"{path}:{node.lineno}: from repro.api import partition"
                )
        elif isinstance(node, ast.Attribute) and node.attr == "partition":
            chain = _attr_chain(node)
            if chain.endswith("api.partition"):
                uses.append(f"{path}:{node.lineno}: {chain}")
    return uses


def test_scan_covers_the_package():
    files = _python_files()
    assert any(f.name == "solver.py" for f in files)
    assert any(f.parent.name == "tools" for f in files)


@pytest.mark.parametrize(
    "path", _python_files(), ids=lambda p: str(p.relative_to(REPO))
)
def test_no_in_tree_use_of_api_partition_shim(path):
    if path in ALLOWED:
        pytest.skip("the shim's own definition site")
    uses = _shim_uses(path)
    assert not uses, (
        "deprecated repro.api.partition shim used in-tree; call "
        "repro.api.Solver().solve(...) instead:\n" + "\n".join(uses)
    )
