"""ISSUE 6 acceptance canaries: each deliberate violation produces
exactly one diagnostic, anchored at the sink, with the correct
source→sink symbol path in the message — plus the multi-file noqa
regression (a suppression at the sink silences an interprocedural
diagnostic whose source lives in another file)."""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.analysis.engine import lint_paths
from repro.analysis.registry import get_rule

HERE = Path(__file__).parent
FLOW_FIXTURES = HERE / "flow_fixtures"
REPO_ROOT = HERE.parent.parent


def test_shared_rng_into_executor_exactly_one_diagnostic():
    """A shared default_rng submitted to a pool: one REP101, at the
    submit sink, path source→sink — and no second hit at the creation."""
    result = lint_paths(
        [FLOW_FIXTURES], rules=[get_rule("REP101")], root=REPO_ROOT
    )
    from_canary = [
        d for d in result.diagnostics if d.path.endswith("submit_bad.py")
    ]
    assert len(from_canary) == 1
    diag = from_canary[0]
    assert "repro.pipeline.submit_bad.GEN" in diag.message
    assert (
        "path: repro.pipeline.submit_bad.run_all -> submit -> "
        "repro.pipeline.submit_bad.worker" in diag.message
    )


def test_perf_counter_in_event_sim_path_exactly_one_diagnostic():
    """perf_counter reached from the event simulator: one REP102, at the
    clock read in the *other* file, with the full call path."""
    result = lint_paths(
        [FLOW_FIXTURES], rules=[get_rule("REP102")], root=REPO_ROOT
    )
    assert len(result.diagnostics) == 1
    diag = result.diagnostics[0]
    assert diag.path.endswith("measurement/timers.py")
    assert "time.perf_counter" in diag.message
    assert (
        "path: repro.runtime.event_sim.EventSimulator.advance -> "
        "repro.measurement.timers.elapsed_wall_s" in diag.message
    )


def test_executor_writes_report_at_sink_with_path():
    result = lint_paths(
        [FLOW_FIXTURES], rules=[get_rule("REP103")], root=REPO_ROOT
    )
    assert len(result.diagnostics) == 2
    assert all(d.path.endswith("exec/registry.py") for d in result.diagnostics)
    for diag in result.diagnostics:
        assert (
            "path: repro.exec.orchestrator.run_all -> "
            "repro.exec.orchestrator._worker -> "
            "repro.exec.registry.record_result" in diag.message
        )


def test_noqa_at_sink_suppresses_cross_file_diagnostic(tmp_path):
    """``reopen_cache`` is silenced by the noqa at its sink line; with
    the noqa stripped, the same multi-file diagnostic fires."""
    # as committed: the noqa'd write never appears
    result = lint_paths(
        [FLOW_FIXTURES], rules=[get_rule("REP103")], root=REPO_ROOT
    )
    assert not any("_CACHE" in d.message for d in result.diagnostics)

    # strip the suppression in a copy: the diagnostic appears
    tree = tmp_path / "repro" / "exec"
    shutil.copytree(FLOW_FIXTURES / "repro" / "exec", tree)
    registry = tree / "registry.py"
    registry.write_text(
        registry.read_text(encoding="utf-8").replace(
            "  # repro: noqa REP103  (worker-local re-open)", ""
        ),
        encoding="utf-8",
    )
    result = lint_paths(
        [tmp_path], rules=[get_rule("REP103")], root=tmp_path
    )
    cache_writes = [d for d in result.diagnostics if "_CACHE" in d.message]
    assert len(cache_writes) == 1
    assert cache_writes[0].path.endswith("registry.py")
    assert "reopen_cache" in cache_writes[0].message
