"""Unit tests for the lint framework itself (no domain rules involved)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.context import module_name_for, parse_noqa
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import LintResult, lint_paths
from repro.analysis.registry import get_rule
from repro.analysis.reporters import render_json, render_text

HERE = Path(__file__).parent
FIXTURES = HERE / "fixtures"
REPO_ROOT = HERE.parent.parent


def diag(path="a.py", line=1, col=1, rule="REP001", message="m"):
    return Diagnostic(path=path, line=line, col=col, rule=rule, message=message)


# -- diagnostics -----------------------------------------------------------


def test_diagnostic_json_roundtrip():
    d = diag(path="src/x.py", line=3, col=7, message="boom")
    assert Diagnostic.from_json(d.to_json()) == d


def test_diagnostic_key_ignores_position():
    a = diag(line=1, col=1)
    b = diag(line=99, col=5)
    assert a.key() == b.key()
    assert a.format() == "a.py:1:1: REP001 m"


# -- noqa / module naming --------------------------------------------------


def test_parse_noqa_variants():
    source = "\n".join(
        [
            "x = 1  # repro: noqa",
            "y = 2  # repro: noqa REP001,REP003",
            "z = 3  # repro: noqa REP002 REP004",
            "w = 4",
        ]
    )
    suppressions = parse_noqa(source)
    assert suppressions[1] is None
    assert suppressions[2] == {"REP001", "REP003"}
    assert suppressions[3] == {"REP002", "REP004"}
    assert 4 not in suppressions


def test_module_name_anchors_at_repro():
    assert module_name_for(Path("src/repro/runtime/mpi_sim.py")) == (
        "repro.runtime.mpi_sim"
    )
    assert module_name_for(Path("tests/analysis/fixtures/repro/core/x.py")) == (
        "repro.core.x"
    )
    assert module_name_for(Path("src/repro/util/__init__.py")) == "repro.util"
    assert module_name_for(Path("elsewhere/plain.py")) == "plain"


# -- baseline --------------------------------------------------------------


def test_baseline_accepts_existing_and_flags_growth():
    existing = [diag(line=1), diag(line=2)]
    baseline = Baseline.from_diagnostics(existing)
    # same two occurrences: accepted
    new, fixed = baseline.filter_new(existing)
    assert new == [] and fixed == []
    # a third identical occurrence is NEW even though the key is known
    grown = [*existing, diag(line=3)]
    new, _ = baseline.filter_new(grown)
    assert [d.line for d in new] == [3]
    # dropping one occurrence reports the key as (partially) fixed
    new, fixed = baseline.filter_new([diag(line=1)])
    assert new == [] and fixed == [diag().key()]


def test_baseline_save_load_roundtrip(tmp_path):
    baseline = Baseline.from_diagnostics([diag(), diag(rule="REP005")])
    path = tmp_path / "baseline.json"
    baseline.save(path)
    assert Baseline.load(path).entries == baseline.entries
    assert len(baseline) == 2
    assert Baseline.load(tmp_path / "missing.json").entries == {}


# -- engine / reporters ----------------------------------------------------


def test_engine_reports_parse_errors(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    result = lint_paths([bad], root=REPO_ROOT)
    assert result.diagnostics == []
    assert len(result.parse_errors) == 1
    assert "syntax error" in result.parse_errors[0]


def test_engine_skips_non_python_and_cache_dirs(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x=", encoding="utf-8")
    (tmp_path / "notes.txt").write_text("hi", encoding="utf-8")
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    result = lint_paths([tmp_path], root=REPO_ROOT)
    assert result.files_checked == 1
    assert result.parse_errors == []


def test_render_text_and_json_agree():
    bad = FIXTURES / "repro" / "core" / "bad_units.py"
    result = lint_paths([bad], rules=[get_rule("REP002")], root=REPO_ROOT)
    text = render_text(result)
    payload = json.loads(render_json(result))
    assert len(payload["diagnostics"]) == len(result.diagnostics) > 0
    assert payload["summary"] == {"REP002": len(result.diagnostics)}
    for entry in payload["diagnostics"]:
        assert f"{entry['line']}:{entry['col']} REP002" in text


def test_render_text_baseline_mode_counts_accepted():
    diags = [diag(line=1), diag(line=2)]
    result = LintResult(diagnostics=diags, files_checked=1)
    text = render_text(result, new=[diags[1]])
    assert "1 new violation(s) (1 accepted by baseline)" in text
