"""Golden-fixture tests: each rule catches its seeded violations exactly.

The fixture tree under ``fixtures/`` mimics the ``repro`` package layout
(the engine anchors module names at the last ``repro`` directory), with
one deliberately-broken file per rule and clean companions.  The expected
diagnostics live as JSON next to the fixtures; a rule change that alters
what is reported must update the golden file in the same commit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.engine import lint_paths
from repro.analysis.registry import all_rules, get_rule

HERE = Path(__file__).parent
FIXTURES = HERE / "fixtures"
FLOW_FIXTURES = HERE / "flow_fixtures"
EXPECTED = HERE / "expected"
REPO_ROOT = HERE.parent.parent

RULE_IDS = ["REP001", "REP002", "REP003", "REP004", "REP005", "REP006"]
FLOW_RULE_IDS = ["REP101", "REP102", "REP103", "REP104"]

CLEAN_FIXTURES = [
    FIXTURES / "repro" / "runtime" / "clean_runtime.py",
    FIXTURES / "repro" / "experiments" / "clean_experiment.py",
    FIXTURES / "repro" / "goodpkg" / "__init__.py",
    FIXTURES / "repro" / "goodpkg" / "helpers.py",
    FIXTURES / "repro" / "lazypkg" / "__init__.py",
]

#: Flow-fixture files that must stay silent under every flow rule (the
#: sanctioned patterns: util.rng creation, obs boundary, seeds-not-
#: generators across the pool, matching unit suffixes).
CLEAN_FLOW_FIXTURES = [
    FLOW_FIXTURES / "repro" / "util" / "rng.py",
    FLOW_FIXTURES / "repro" / "pipeline" / "rng_clean.py",
    FLOW_FIXTURES / "repro" / "runtime" / "recovery.py",
    FLOW_FIXTURES / "repro" / "obs" / "tracer.py",
    FLOW_FIXTURES / "repro" / "model" / "convert.py",
]


@pytest.mark.parametrize("rule_id", RULE_IDS + FLOW_RULE_IDS)
def test_rule_catches_seeded_violations(rule_id):
    """Each rule reproduces its golden diagnostics on its fixture tree."""
    expected = json.loads(
        (EXPECTED / f"{rule_id.lower()}.json").read_text(encoding="utf-8")
    )
    tree = FLOW_FIXTURES if rule_id in FLOW_RULE_IDS else FIXTURES
    result = lint_paths([tree], rules=[get_rule(rule_id)], root=REPO_ROOT)
    assert result.parse_errors == []
    assert [d.to_json() for d in result.diagnostics] == expected
    assert expected, f"golden file for {rule_id} must seed at least one violation"


def test_registry_is_complete():
    """Per-file and flow rules are registered with ids, titles, rationales."""
    rules = all_rules()
    assert [r.rule_id for r in rules] == RULE_IDS + FLOW_RULE_IDS
    assert all(r.title and r.rationale for r in rules)


def test_clean_fixtures_yield_zero_diagnostics():
    """Negative control: idiomatic code produces no diagnostics at all."""
    result = lint_paths(CLEAN_FIXTURES, root=REPO_ROOT)
    assert result.parse_errors == []
    assert result.diagnostics == []
    assert result.files_checked == len(CLEAN_FIXTURES)


def test_clean_flow_fixtures_yield_zero_flow_diagnostics():
    """Negative control for the flow tier: sanctioned patterns stay silent.

    The clean files are linted *together* (they form one call graph: the
    pool submit in ``rng_clean`` resolves into ``util.rng``, ``recovery``
    resolves into ``obs.tracer``) with every flow rule active.
    """
    result = lint_paths(
        CLEAN_FLOW_FIXTURES,
        rules=[get_rule(rule_id) for rule_id in FLOW_RULE_IDS],
        root=REPO_ROOT,
    )
    assert result.parse_errors == []
    assert result.diagnostics == []


def test_noqa_suppresses_inline():
    """The REP001 fixture's `# repro: noqa REP001` line stays silent."""
    bad = FIXTURES / "repro" / "measurement" / "bad_determinism.py"
    result = lint_paths([bad], rules=[get_rule("REP001")], root=REPO_ROOT)
    flagged_lines = {d.line for d in result.diagnostics}
    source_lines = bad.read_text(encoding="utf-8").splitlines()
    noqa_lines = {
        i for i, line in enumerate(source_lines, start=1) if "repro: noqa" in line
    }
    assert noqa_lines, "fixture must exercise suppression"
    assert not (flagged_lines & noqa_lines)
