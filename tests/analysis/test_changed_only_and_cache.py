"""``--changed-only`` (git-aware narrowing) and the flow-summary cache."""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

from repro.analysis.cli import changed_files, main as lint_main
from repro.analysis.engine import lint_paths

HERE = Path(__file__).parent
REPO_ROOT = HERE.parent.parent

_GIT_ENV = {
    "GIT_AUTHOR_NAME": "t",
    "GIT_AUTHOR_EMAIL": "t@example.invalid",
    "GIT_COMMITTER_NAME": "t",
    "GIT_COMMITTER_EMAIL": "t@example.invalid",
    "HOME": "/nonexistent",  # ignore any user-level git config
}


def git(repo: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-C", str(repo), *args],
        check=True,
        capture_output=True,
        env={**_GIT_ENV, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )


@pytest.fixture
def tmp_repo(tmp_path):
    """A git repo holding a tiny repro tree with one REP002 violation
    per file (unit families mixed in an addition)."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    bad = "def f(n_bytes, n_blocks):\n    return n_bytes + n_blocks\n"
    (pkg / "alpha.py").write_text(bad, encoding="utf-8")
    (pkg / "beta.py").write_text(bad, encoding="utf-8")
    git(tmp_path, "init", "-q")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


def test_changed_files_tracks_modified_and_untracked(tmp_repo):
    assert changed_files(tmp_repo) == []
    alpha = tmp_repo / "repro" / "core" / "alpha.py"
    alpha.write_text(alpha.read_text() + "\n", encoding="utf-8")
    (tmp_repo / "repro" / "core" / "gamma.py").write_text("x = 1\n")
    changed = {p.name for p in changed_files(tmp_repo)}
    assert changed == {"alpha.py", "gamma.py"}


def test_changed_files_outside_git_is_none(tmp_path):
    assert changed_files(tmp_path) is None


def test_cli_changed_only_narrows_reporting(tmp_repo, capsys, monkeypatch):
    monkeypatch.chdir(tmp_repo)
    alpha = tmp_repo / "repro" / "core" / "alpha.py"
    alpha.write_text(alpha.read_text() + "\n", encoding="utf-8")
    assert lint_main(["repro", "--no-baseline", "--changed-only"]) == 1
    out = capsys.readouterr().out
    assert "alpha.py" in out
    assert "beta.py" not in out  # unchanged: not reported
    # without the flag both files report
    assert lint_main(["repro", "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "alpha.py" in out and "beta.py" in out


def test_cli_changed_only_falls_back_outside_git(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "alpha.py").write_text(
        "def f(n_bytes, n_blocks):\n    return n_bytes + n_blocks\n"
    )
    assert lint_main(["repro", "--no-baseline", "--changed-only"]) == 1
    captured = capsys.readouterr()
    assert "alpha.py" in captured.out  # full tree linted anyway
    assert "falls back" in captured.err or "full tree" in captured.err


def test_engine_only_filters_flow_diagnostics_to_sinks():
    """The call graph spans everything, but reporting narrows to the
    ``only`` files: with only the *source* file listed, the sink-anchored
    diagnostic (in another file) is dropped; with the sink file listed,
    it survives."""
    flow_fixtures = HERE / "flow_fixtures"
    source = flow_fixtures / "repro" / "runtime" / "event_sim.py"
    sink = flow_fixtures / "repro" / "measurement" / "timers.py"
    from repro.analysis.registry import get_rule

    rules = [get_rule("REP102")]
    narrowed = lint_paths(
        [flow_fixtures], rules=rules, root=REPO_ROOT, only=[source]
    )
    assert narrowed.diagnostics == []
    kept = lint_paths(
        [flow_fixtures], rules=rules, root=REPO_ROOT, only=[sink]
    )
    assert len(kept.diagnostics) == 1
    assert kept.diagnostics[0].path.endswith("timers.py")


def test_cli_flow_cache_populates_and_reuses(tmp_repo, capsys, monkeypatch):
    monkeypatch.chdir(tmp_repo)
    cache_dir = tmp_repo / "cache"
    argv = [
        "repro",
        "--no-baseline",
        "--flow",
        "--rules",
        "REP104",
        "--cache-dir",
        str(cache_dir),
    ]
    assert lint_main(argv) == 0
    capsys.readouterr()
    entries = sorted((cache_dir / "lint").glob("*.json"))
    assert len(entries) == 2  # one summary per fixture file
    assert lint_main(argv) == 0  # warm run: same verdict off the cache
    mtimes = [p.stat().st_mtime_ns for p in entries]
    assert mtimes == [p.stat().st_mtime_ns for p in sorted(
        (cache_dir / "lint").glob("*.json")
    )]


def test_rule_times_are_recorded():
    result = lint_paths(
        [HERE / "flow_fixtures"], root=REPO_ROOT, flow=True
    )
    assert "callgraph" in result.rule_times_s
    for rule_id in ("REP001", "REP101", "REP102", "REP103", "REP104"):
        assert result.rule_times_s.get(rule_id, -1.0) >= 0.0
