"""Unit tests for the flow tier's machinery: summary extraction, the
taint engine, call-graph resolution, and the content-addressed summary
cache (no flow rules involved)."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.callgraph import build_call_graph
from repro.analysis.dataflow import TaintEngine
from repro.analysis.flow import build_flow_project, summary_cache_key
from repro.analysis.symbols import (
    ModuleSummary,
    extract_summary,
    flow_unit_family,
    source_digest,
    walk_scope,
)
from repro.store import ResultStore

HERE = Path(__file__).parent
REPO_ROOT = HERE.parent.parent


def summarize(source: str, module: str, relpath: str | None = None):
    tree = ast.parse(source)
    return extract_summary(source, tree, module, relpath or "x.py")


# -- taint engine ----------------------------------------------------------


def run_taint(source: str):
    tree = ast.parse(source)
    seeds = {
        "numpy.random.default_rng": "rng",
        "concurrent.futures.ProcessPoolExecutor": "executor",
    }

    def resolve(expr):
        name_parts = []
        node = expr
        while isinstance(node, ast.Attribute):
            name_parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        name_parts.append(node.id)
        dotted = ".".join(reversed(name_parts))
        return {
            "default_rng": "numpy.random.default_rng",
            "ProcessPoolExecutor": "concurrent.futures.ProcessPoolExecutor",
        }.get(dotted.split(".")[0], dotted)

    return TaintEngine(seeds, resolve).run(tree.body)


def test_taint_direct_and_alias():
    state = run_taint("rng = default_rng(0)\nalias = rng\nother = 1\n")
    assert state["rng"] == "rng"
    assert state["alias"] == "rng"
    assert "other" not in state


def test_taint_tuple_unpack_and_with():
    state = run_taint(
        "a, b = default_rng(0), 1\n"
        "with ProcessPoolExecutor() as pool:\n"
        "    pass\n"
    )
    assert state["a"] == "rng"
    assert "b" not in state
    assert state["pool"] == "executor"


def test_taint_two_pass_sees_later_binding():
    # the alias appears textually *before* the tainted assignment: the
    # second pass catches it (loop bodies read names bound further down)
    state = run_taint(
        "def nothing():\n    pass\n"
        "alias = rng\n"
        "rng = default_rng(0)\n"
    )
    assert state["alias"] == "rng"


# -- scope walking / extraction -------------------------------------------


def test_walk_scope_skips_nested_defs():
    fn = ast.parse(
        "def outer():\n"
        "    x = 1\n"
        "    def inner():\n"
        "        y = 2\n"
        "    return x\n"
    ).body[0]
    names = {
        n.id for n in walk_scope(fn) if isinstance(n, ast.Name)
    }
    assert "x" in names
    assert "y" not in names  # inner's body belongs to inner's summary


def test_extract_nested_call_attribution():
    summary = summarize(
        "import time\n"
        "def outer():\n"
        "    def inner():\n"
        "        return time.perf_counter()\n"
        "    return inner\n",
        "repro.m",
    )
    outer = summary.functions["repro.m.outer"]
    inner = summary.functions["repro.m.outer.inner"]
    assert all(c.target != "time.perf_counter" for c in outer.calls)
    assert any(c.target == "time.perf_counter" for c in inner.calls)


def test_extract_methods_params_and_self():
    summary = summarize(
        "class Timer:\n"
        "    def span_s(self, start_s):\n"
        "        return self.read_s() - start_s\n"
        "    def read_s(self):\n"
        "        return 0.0\n",
        "repro.m",
    )
    span = summary.functions["repro.m.Timer.span_s"]
    assert span.params == ("start_s",)
    assert span.is_method
    assert any(c.target == "repro.m.Timer.read_s" for c in span.calls)
    assert "repro.m.Timer" in summary.classes


def test_extract_submit_and_global_write():
    summary = summarize(
        "from concurrent.futures import ProcessPoolExecutor\n"
        "STATE = {}\n"
        "def worker(n):\n"
        "    STATE['k'] = n\n"
        "def run():\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return pool.submit(worker, 1)\n",
        "repro.m",
    )
    run = summary.functions["repro.m.run"]
    assert len(run.submits) == 1
    assert run.submits[0].target == "repro.m.worker"
    worker = summary.functions["repro.m.worker"]
    assert [(w.name, w.kind) for w in worker.global_writes] == [
        ("repro.m.STATE", "mutation")
    ]


def test_flow_unit_family_suffixes():
    assert flow_unit_family("total_bytes") == "bytes"
    assert flow_unit_family("dt_s") == "seconds"
    assert flow_unit_family("window_sim_s") == "sim_seconds"
    assert flow_unit_family("nblocks") == "blocks"
    assert flow_unit_family("s") is None  # bare short name is not a unit
    assert flow_unit_family("payload") is None


def test_module_summary_json_roundtrip():
    summary = summarize(
        "import numpy as np\n"
        "GEN = np.random.default_rng(1)  # repro: noqa REP101\n"
        "def f(n_blocks):\n"
        "    return np.random.default_rng(n_blocks)\n",
        "repro.m",
    )
    restored = ModuleSummary.from_json(summary.to_json())
    assert restored.to_json() == summary.to_json()
    assert restored.module_rng[0].name == "repro.m.GEN"
    assert restored.is_suppressed("REP101", 2)
    assert not restored.is_suppressed("REP102", 2)


# -- call graph ------------------------------------------------------------


def test_callgraph_reexport_and_ctor_binding():
    pkg = summarize(
        "from repro.pkg.impl import helper\n", "repro.pkg", "repro/pkg/__init__.py"
    )
    impl = summarize(
        "class Thing:\n"
        "    def __init__(self):\n"
        "        self.x = 0\n"
        "def helper():\n"
        "    return Thing()\n",
        "repro.pkg.impl",
        "repro/pkg/impl.py",
    )
    user = summarize(
        "from repro.pkg import helper\n"
        "def use():\n"
        "    return helper()\n",
        "repro.user",
        "repro/user.py",
    )
    graph = build_call_graph([pkg, impl, user])
    # re-export: repro.pkg.helper -> repro.pkg.impl.helper
    assert graph.resolve("repro.pkg.helper") == "repro.pkg.impl.helper"
    # constructor binding: class -> __init__
    assert graph.resolve("repro.pkg.impl.Thing") == "repro.pkg.impl.Thing.__init__"
    callees = {c for c, _ in graph.edges["repro.user.use"]}
    assert "repro.pkg.impl.helper" in callees


def test_callgraph_unique_method_binding():
    one = summarize(
        "class A:\n"
        "    def only_here(self):\n"
        "        return 1\n",
        "repro.a",
        "repro/a.py",
    )
    two = summarize(
        "class B:\n"
        "    def everywhere(self):\n"
        "        return 1\n"
        "class C:\n"
        "    def everywhere(self):\n"
        "        return 2\n",
        "repro.b",
        "repro/b.py",
    )
    graph = build_call_graph([one, two])
    assert graph.resolve("@method:only_here") == "repro.a.A.only_here"
    assert graph.resolve("@method:everywhere") is None  # ambiguous: no guess


def test_callgraph_reachability_and_path():
    mods = [
        summarize("def a():\n    return b()\ndef b():\n    return c()\n"
                  "def c():\n    return 0\ndef d():\n    return 0\n",
                  "repro.m", "repro/m.py")
    ]
    graph = build_call_graph(mods)
    forest = graph.reachable(["repro.m.a"])
    assert set(forest) == {"repro.m.a", "repro.m.b", "repro.m.c"}
    assert graph.call_path(forest, "repro.m.c") == [
        "repro.m.a", "repro.m.b", "repro.m.c"
    ]


# -- summary cache ---------------------------------------------------------


def test_flow_summary_cache_round_trip(tmp_path, monkeypatch):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "mod.py").write_text(
        "def f():\n    return 1\n", encoding="utf-8"
    )
    cache = ResultStore(tmp_path / "cache")

    import repro.analysis.flow as flow_mod

    calls = {"n": 0}
    real = flow_mod.extract_summary

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(flow_mod, "extract_summary", counting)
    first = build_flow_project([tree / "mod.py"], tmp_path, cache=cache)
    assert calls["n"] == 1
    second = build_flow_project([tree / "mod.py"], tmp_path, cache=cache)
    assert calls["n"] == 1  # cache hit: no re-extraction
    assert set(second.graph.functions) == set(first.graph.functions)
    # the key is content-addressed: editing the file misses and re-extracts
    (tree / "mod.py").write_text(
        "def f():\n    return 2\n", encoding="utf-8"
    )
    build_flow_project([tree / "mod.py"], tmp_path, cache=cache)
    assert calls["n"] == 2


def test_summary_cache_key_includes_digest_and_format():
    a = summary_cache_key("repro/mod.py", source_digest("x = 1\n"))
    b = summary_cache_key("repro/mod.py", source_digest("x = 2\n"))
    assert a != b
    assert a["format"] == b["format"]
