"""REP003 fixture: a blocking EventSimulator handler outside runtime/."""

import time

from repro.runtime.event_sim import EventSimulator


def on_kernel_done(sim: EventSimulator) -> None:
    time.sleep(0.5)  # handlers must model delays, not sleep through them
