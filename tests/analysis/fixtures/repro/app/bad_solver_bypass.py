"""Seeded REP006 violations: partition internals imported above core."""

import repro.core.partition as raw_partition
from repro.core import partition_fpm_scalar
from repro.core.partition import partition_cpm, partition_fpm
from repro.core.partition import partition_fpm_with_state, resolve_fpm


def bypass_the_facade(models, total):
    """Calls the solver internals instead of repro.core.solver.Solver."""
    allocs = partition_fpm(models, total)
    oracle = partition_fpm_scalar(models, total)
    constants = partition_cpm(models, total)
    many = raw_partition.partition_fpm_many(models, [total])
    return allocs, oracle, constants, many


def bypass_the_warm_chain(models, total):
    """Hand-rolls the warm solve/re-solve pair instead of Solver.resolve."""
    allocs, state = partition_fpm_with_state(models, total)
    return resolve_fpm(state, total=total), allocs
