"""REP002 fixture: unit-suffix mixing and literal quantities."""

from repro.util.units import blocks_to_bytes


def confused_total(area_blocks: float, payload_bytes: float) -> float:
    return area_blocks + payload_bytes  # blocks + bytes


def confused_compare(kernel_flops: float, speed_gflops: float) -> bool:
    return kernel_flops > speed_gflops  # flop count vs rate


def hidden_unit() -> float:
    return blocks_to_bytes(6400)  # literal quantity: unit invisible


def fine_conversion(area_blocks: float, bytes_per_block: float) -> float:
    return area_blocks * bytes_per_block  # multiplication converts: allowed
