"""Negative fixture: PEP 562 lazy re-exports are not 'never bound'."""

__all__ = [
    "lazy_thing",
]


def __getattr__(name: str):
    if name == "lazy_thing":
        return 42
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
