"""Negative fixture package: a public surface that is fully in sync."""

from repro.goodpkg.helpers import tidy_helper

__all__ = [
    "tidy_helper",
]
