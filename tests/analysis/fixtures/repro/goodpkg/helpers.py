"""Helpers for the clean REP004 fixture package."""


def tidy_helper() -> int:
    """Documented, listed in __all__ — nothing to report."""
    return 3
