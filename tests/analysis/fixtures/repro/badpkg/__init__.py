"""REP004 fixture package: a public surface out of sync everywhere."""

from repro.badpkg.helpers import (
    documented_helper,
    undocumented_export,
    undocumented_helper,
)

__all__ = [
    "documented_helper",
    "ghost_name",
    "undocumented_export",
]
