"""Helpers for the REP004 fixture package."""


def documented_helper() -> int:
    """A documented export (only its __all__ companion is broken)."""
    return 1


def undocumented_helper() -> int:
    return 2


def undocumented_export() -> int:
    return 4
