"""REP003 fixture: blocking calls, shared globals, orphan send tags."""

import time

PENDING: dict[str, int] = {}
COUNTER = 0


def slow_handler(sim) -> None:
    time.sleep(0.1)  # blocks the real clock, not the simulated one
    PENDING["last"] = 1  # mutates a shared module global


def racy_worker() -> None:
    global COUNTER
    COUNTER += 1


def lopsided_exchange(comm) -> None:
    comm.send(b"work", dest=1, tag=7)  # no matching recv tag 7
    comm.recv(source=1, tag=8)
