"""Negative fixture: idiomatic runtime code that every rule accepts."""


def forward_after_delay(sim, delay_s: float, payload_bytes: float) -> None:
    def deliver(sim2) -> None:
        record(sim2, payload_bytes)

    sim.schedule(delay_s, deliver)


def record(sim, payload_bytes: float) -> None:
    sizes: list[float] = []
    sizes.append(payload_bytes)


def matched_exchange(comm) -> None:
    comm.send(b"work", dest=1, tag=3)
    comm.recv(source=0, tag=3)
