"""REP001 fixture: every classic determinism leak in one file."""

import random
import time
from datetime import datetime

import numpy as np


def leaky_measurement() -> tuple:
    start = time.time()  # wall clock
    tick = time.perf_counter()  # wall clock
    jitter = random.random()  # stdlib RNG
    gen = np.random.default_rng()  # numpy RNG bypassing RngStream
    stamp = datetime.now()  # datetime wall clock
    return start, tick, jitter, gen, stamp


def suppressed_measurement() -> float:
    return time.time()  # repro: noqa REP001
