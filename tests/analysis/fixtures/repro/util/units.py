"""Fixture units module (mirrors util/units.py's owned constant)."""

DEFAULT_BLOCKING_FACTOR = 640
