"""REP005 fixture: paper constants re-typed instead of referenced."""


def plateau_check(speed: float) -> bool:
    return speed > 105.0  # re-typed FIG2_S6_PLATEAU


def sweep_limit() -> float:
    return 1200.0  # re-typed FIG3_MEMORY_LIMIT


def block_elements(n: int) -> int:
    return n * 640 * 640  # re-typed blocking factor, twice


def fine_tolerance(x: float) -> bool:
    return x < 0.15  # below the distinctiveness threshold: not flagged
