"""Negative fixture: an experiment referencing constants by name."""

from repro.experiments.paper_data import FIG2_S6_PLATEAU
from repro.util.units import DEFAULT_BLOCKING_FACTOR


def expected_speed() -> float:
    return FIG2_S6_PLATEAU


def elements(n_blocks: int) -> int:
    return n_blocks * DEFAULT_BLOCKING_FACTOR * DEFAULT_BLOCKING_FACTOR
