"""Fixture transcription module (mirrors experiments/paper_data.py)."""

FIG2_S6_PLATEAU = 105.0
FIG3_MEMORY_LIMIT = 1200.0
SMALL_TOLERANCE = 0.15
