"""Unit-suffixed callees for the REP104 fixtures."""

BLOCK_BYTES = 65536


def bytes_for(count_blocks):
    return count_blocks * BLOCK_BYTES


def wall_span_s(end_s, start_s):
    return end_s - start_s
