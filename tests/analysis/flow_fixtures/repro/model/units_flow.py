"""REP104 true positives: unit suffixes violated across call boundaries.

``plan`` feeds a ``_bytes`` value to a ``_blocks`` parameter and a
``_sim_s`` (simulated seconds) value to an ``_s`` (wall seconds)
parameter; ``drift_blocks`` binds a seconds-returning callee to a
blocks-suffixed name.  ``ok_span_s`` is the in-file negative control.
"""

from repro.model.convert import bytes_for, wall_span_s


def plan(payload_bytes, window_sim_s):
    size_bytes = bytes_for(payload_bytes)
    drift_s = wall_span_s(window_sim_s, 0.0)
    return size_bytes, drift_s


def drift_blocks_of(end_s):
    elapsed_blocks = wall_span_s(end_s, 0.0)
    return elapsed_blocks


def ok_span_s(end_s, start_s):
    span_s = wall_span_s(end_s, start_s)
    return span_s
