"""REP101 canary: a shared generator handed to executor-submitted work.

Exactly one diagnostic must come out of this file — at the submit sink,
with the source→sink symbol path — not a second one at ``GEN``'s
creation site.
"""

from concurrent.futures import ProcessPoolExecutor

import numpy as np

GEN = np.random.default_rng(123)


def worker(rng, n_blocks):
    return float(rng.normal(size=n_blocks).sum())


def run_all(n_blocks):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(worker, GEN, n_blocks) for _ in range(4)]
    return [f.result() for f in futures]
