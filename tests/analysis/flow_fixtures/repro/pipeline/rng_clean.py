"""REP101 negative control: seeds cross the pool, generators do not."""

from concurrent.futures import ProcessPoolExecutor

from repro.util.rng import make_root, sibling_seeds


def worker_from_seed(seed, n_blocks):
    rng = make_root(seed)
    return float(rng.normal(size=n_blocks).sum())


def run_all(n_blocks):
    root = make_root(0)
    with ProcessPoolExecutor() as pool:
        futures = [
            pool.submit(worker_from_seed, seed, n_blocks)
            for seed in sibling_seeds(root, 4)
        ]
    return [f.result() for f in futures]
