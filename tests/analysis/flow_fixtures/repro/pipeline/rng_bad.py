"""REP101 true positives: generators created outside ``repro.util.rng``."""

import numpy as np

SHARED = np.random.default_rng(7)


def jitter_blocks(n_blocks, seed):
    rng = np.random.default_rng(seed)
    return n_blocks + int(rng.integers(0, 4))
