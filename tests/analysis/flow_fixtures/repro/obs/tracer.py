"""Fixture mirror of ``repro.obs.tracer`` — the sanctioned wall-clock
boundary.  REP102's traversal never descends into ``repro.obs``."""

import time


def wall_clock_s():
    return time.perf_counter()
