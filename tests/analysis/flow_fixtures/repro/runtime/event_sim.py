"""REP102 canary: the simulated runtime reaching a wall-clock read.

``EventSimulator.advance`` calls into ``repro.measurement.timers``, which
reads ``time.perf_counter`` — one diagnostic at that read, carrying the
path ``...EventSimulator.advance -> ...elapsed_wall_s``.
"""

from repro.measurement.timers import elapsed_wall_s


class EventSimulator:
    def __init__(self):
        self.now_sim_s = 0.0

    def advance(self, dt_sim_s):
        self.now_sim_s += dt_sim_s
        return elapsed_wall_s(0.0)
