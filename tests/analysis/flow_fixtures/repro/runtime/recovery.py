"""REP102 negative control: simulated code observing time through the
sanctioned ``repro.obs`` boundary produces no diagnostic."""

from repro.obs.tracer import wall_clock_s


def checkpoint_overhead_s(n_blocks):
    started_s = wall_clock_s()
    for _ in range(n_blocks):
        pass
    return wall_clock_s() - started_s
