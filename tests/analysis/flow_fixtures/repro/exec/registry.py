"""REP103 sinks: module-level state written by a function the pool runs.

``record_result`` is the violation (a ``global`` rebind and a container
mutation); ``reopen_cache`` is the sanctioned worker-local re-open
pattern, silenced at the sink line — the multi-file noqa regression.
"""

RESULTS: dict = {}
_COUNT = 0
_CACHE: dict = {}


def record_result(name, payload):
    global _COUNT
    _COUNT = _COUNT + 1
    RESULTS[name] = payload


def reopen_cache(path):
    global _CACHE
    _CACHE = {"path": path}  # repro: noqa REP103  (worker-local re-open)
