"""REP103 source: a pool worker two calls away from shared-state writes."""

from concurrent.futures import ProcessPoolExecutor

from repro.exec.registry import record_result, reopen_cache


def _worker(name, payload):
    reopen_cache("/tmp/store")
    record_result(name, payload)
    return name


def run_all(configs):
    with ProcessPoolExecutor() as pool:
        futures = [
            pool.submit(_worker, name, payload)
            for name, payload in configs.items()
        ]
    return [f.result() for f in futures]
