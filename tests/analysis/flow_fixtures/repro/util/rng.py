"""Fixture mirror of ``repro.util.rng`` — the sanctioned generator home.

The flow tier anchors module names at the last ``repro`` directory, so
this file *is* ``repro.util.rng`` to the analyser: generator creation in
here is allowed (REP101's allowlist), everywhere else it is flagged.
"""

import numpy as np


def make_root(seed):
    return np.random.default_rng(seed)


def sibling_seeds(root, n):
    return [int(s) for s in root.integers(0, 2**31, size=n)]
