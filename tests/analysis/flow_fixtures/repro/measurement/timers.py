"""A helper that reads the wall clock — fine on its own (this module is
not simulated), a REP102 violation once the event simulator reaches it."""

import time


def elapsed_wall_s(start_s):
    return time.perf_counter() - start_s
