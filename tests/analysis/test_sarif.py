"""SARIF 2.1.0 reporter: golden envelope plus structural invariants."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import main as lint_main
from repro.analysis.engine import lint_paths
from repro.analysis.registry import all_rules, get_rule
from repro.analysis.reporters import render_sarif

HERE = Path(__file__).parent
FIXTURES = HERE / "fixtures"
EXPECTED = HERE / "expected"
REPO_ROOT = HERE.parent.parent


def test_sarif_golden_envelope():
    """The SARIF log for the REP002 fixture matches the committed golden
    byte for byte (update the golden in the same commit as any reporter
    change)."""
    bad = FIXTURES / "repro" / "core" / "bad_units.py"
    result = lint_paths([bad], rules=[get_rule("REP002")], root=REPO_ROOT)
    rendered = render_sarif(result)
    golden = (EXPECTED / "sarif.json").read_text(encoding="utf-8")
    assert rendered + "\n" == golden


def test_sarif_structure_and_rule_table():
    bad = FIXTURES / "repro" / "core" / "bad_units.py"
    result = lint_paths([bad], rules=[get_rule("REP002")], root=REPO_ROOT)
    log = json.loads(render_sarif(result))
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    (run,) = log["runs"]
    # the driver documents the full rule catalog, not just violated rules
    listed = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert listed == [rule.rule_id for rule in all_rules()]
    assert run["results"], "fixture must produce results"
    for item in run["results"]:
        assert item["ruleId"] == "REP002"
        location = item["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("bad_units.py")
        assert location["region"]["startLine"] >= 1
    (invocation,) = run["invocations"]
    assert invocation["executionSuccessful"] is True


def test_sarif_baseline_mode_reports_only_new(tmp_path):
    """In baseline mode the results list matches the gate's exit status:
    accepted violations produce an empty results array."""
    bad = FIXTURES / "repro" / "core" / "bad_units.py"
    result = lint_paths([bad], rules=[get_rule("REP002")], root=REPO_ROOT)
    log = json.loads(render_sarif(result, new=[]))
    assert log["runs"][0]["results"] == []


def test_cli_emits_sarif(capsys):
    bad = FIXTURES / "repro" / "core" / "bad_units.py"
    assert (
        lint_main([str(bad), "--no-baseline", "--format", "sarif"]) == 1
    )
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    assert log["runs"][0]["results"]
