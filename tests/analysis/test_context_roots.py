"""Regression: fixture ``repro`` trees must not shadow the real package.

``tests/analysis/fixtures/repro/...`` deliberately mimics the source
layout so the domain rules fire on it.  :class:`ProjectContext` therefore
has to be explicit about which tree is which: ``resolve_module`` works
lexically relative to the tree containing ``near``, and ``src_root`` /
``in_source_tree`` anchor the root-level checks (docs/api.md coverage)
at the real source tree only.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.context import ProjectContext
from repro.analysis.engine import lint_paths

HERE = Path(__file__).parent
REPO_ROOT = HERE.parent.parent
SRC = REPO_ROOT / "src"
FIXTURES = HERE / "fixtures"


@pytest.fixture()
def ctx():
    return ProjectContext(REPO_ROOT)


def test_resolution_is_anchored_at_the_callers_tree(ctx):
    src_near = SRC / "repro" / "util" / "validation.py"
    fixture_near = FIXTURES / "repro" / "runtime" / "clean_runtime.py"
    assert (
        ctx.resolve_module("repro.util.units", src_near)
        == (SRC / "repro" / "util" / "units.py").resolve()
    )
    assert (
        ctx.resolve_module("repro.util.units", fixture_near)
        == (FIXTURES / "repro" / "util" / "units.py").resolve()
    )


def test_src_root_defaults_to_root_src(ctx):
    assert ctx.src_root == SRC.resolve()
    assert ctx.in_source_tree(SRC / "repro" / "obs" / "__init__.py")
    assert not ctx.in_source_tree(FIXTURES / "repro" / "util" / "units.py")
    assert not ctx.in_source_tree(REPO_ROOT / "docs" / "api.md")


def test_src_root_can_be_overridden(tmp_path):
    ctx = ProjectContext(REPO_ROOT, src_root=tmp_path)
    assert ctx.src_root == tmp_path.resolve()
    assert not ctx.in_source_tree(SRC / "repro" / "cli.py")
    assert ctx.in_source_tree(tmp_path / "repro" / "anything.py")


def test_paper_constants_are_cached_per_tree(ctx):
    src_constants = ctx.paper_constants(
        SRC / "repro" / "experiments" / "common.py"
    )
    fixture_constants = ctx.paper_constants(
        FIXTURES / "repro" / "experiments" / "bad_constants.py"
    )
    # the fixture paper_data.py is a miniature — the two trees must yield
    # independent (and here different) constant sets from one context
    assert src_constants != fixture_constants


@pytest.mark.analysis
def test_linting_both_trees_in_one_run_matches_separate_runs():
    """One session over src + fixtures == the union of separate sessions.

    The historical failure mode: a combined run anchored root-level
    checks on whichever tree came first, so fixture ``__init__`` files
    were held to docs/api.md (or src ones exempted).
    """
    obs_pkg = SRC / "repro" / "obs"
    combined = lint_paths([obs_pkg, FIXTURES], root=REPO_ROOT)
    src_only = lint_paths([obs_pkg], root=REPO_ROOT)
    fixtures_only = lint_paths([FIXTURES], root=REPO_ROOT)
    assert combined.parse_errors == []
    assert sorted(d.format() for d in combined.diagnostics) == sorted(
        d.format()
        for d in [*src_only.diagnostics, *fixtures_only.diagnostics]
    )
    # and the real obs package is clean on its own
    assert src_only.diagnostics == []
