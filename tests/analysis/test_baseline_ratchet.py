"""Baseline ratchet edge cases (ISSUE 6 satellite).

The ratchet's contract: shrinking is always legal, any growth — new key
or grown count — fails, and keys are stable under everything except a
real change of (path, rule, message).  For flow rules that means the
message must carry *symbol paths*, never line numbers, so whole-file
line drift cannot invalidate an accepted baseline.
"""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import lint_paths
from repro.analysis.registry import get_rule

HERE = Path(__file__).parent
FLOW_FIXTURES = HERE / "flow_fixtures"
REPO_ROOT = HERE.parent.parent


def diag(path="a.py", line=1, rule="REP001", message="m"):
    return Diagnostic(path=path, line=line, col=1, rule=rule, message=message)


def test_shrinking_baseline_is_legal():
    baseline = Baseline.from_diagnostics(
        [diag(message="gone"), diag(message="stays")]
    )
    new, fixed = baseline.filter_new([diag(message="stays")])
    assert new == []
    assert fixed == [diag(message="gone").key()]


def test_count_growth_fails_even_for_known_key():
    baseline = Baseline.from_diagnostics([diag(message="dup")])
    new, _fixed = baseline.filter_new(
        [diag(line=1, message="dup"), diag(line=50, message="dup")]
    )
    assert len(new) == 1  # the second occurrence is beyond the accepted count
    assert new[0].line == 50  # earliest occurrences are forgiven first


def test_renamed_file_changes_key_and_retires_old_entry():
    """A rename is a real identity change: the old key shows up as fixed
    (shrink the baseline), the new path is a new violation to re-accept."""
    baseline = Baseline.from_diagnostics([diag(path="old.py")])
    new, fixed = baseline.filter_new([diag(path="new.py")])
    assert [d.path for d in new] == ["new.py"]
    assert fixed == [diag(path="old.py").key()]


def test_flow_keys_survive_line_drift(tmp_path):
    """Accepted flow diagnostics keep matching after code moves down the
    file: the key has no line number and the message only symbol paths."""
    tree = tmp_path / "repro" / "exec"
    shutil.copytree(FLOW_FIXTURES / "repro" / "exec", tree)
    rules = [get_rule("REP103")]
    before = lint_paths([tmp_path], rules=rules, root=tmp_path)
    assert before.diagnostics, "fixture must produce flow diagnostics"
    baseline = Baseline.from_diagnostics(before.diagnostics)

    # shift both the sink file and the source file by a prologue
    for name in ("registry.py", "orchestrator.py"):
        path = tree / name
        path.write_text(
            "# drift\n# drift\n# drift\n" + path.read_text(encoding="utf-8"),
            encoding="utf-8",
        )
    after = lint_paths([tmp_path], rules=rules, root=tmp_path)
    assert [d.line for d in after.diagnostics] != [
        d.line for d in before.diagnostics
    ], "the drift must actually move the sinks"
    new, fixed = baseline.filter_new(after.diagnostics)
    assert new == []
    assert fixed == []


def test_flow_messages_carry_no_line_numbers():
    """Defence for the drift guarantee: no flow message embeds positions
    (on this fixture tree that means no digits at all — symbol paths and
    prose only)."""
    import re

    rules = [get_rule(r) for r in ("REP101", "REP102", "REP103", "REP104")]
    result = lint_paths([FLOW_FIXTURES], rules=rules, root=REPO_ROOT)
    assert result.diagnostics
    for diagnostic in result.diagnostics:
        assert not re.search(r"\d", diagnostic.message), diagnostic.message
