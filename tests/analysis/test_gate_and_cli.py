"""The self-lint gate (marked ``analysis``) and the CLI surfaces."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import lint_paths
from repro.cli import main as repro_main

HERE = Path(__file__).parent
REPO_ROOT = HERE.parent.parent
SRC = REPO_ROOT / "src"
FIXTURES = HERE / "fixtures"


@pytest.mark.analysis
def test_src_tree_lints_clean_vs_committed_baseline():
    """Tier-1 gate: the baseline may shrink but never grow.

    Runs BOTH tiers — per-file and interprocedural — over ``src``.  The
    committed baseline is empty, so this asserts the whole tree is
    violation-free; if a future PR legitimately accepts a violation, the
    assertion still only fails on *new* ones.
    """
    result = lint_paths([SRC], root=REPO_ROOT, flow=True)
    assert result.parse_errors == []
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
    new, _fixed = baseline.filter_new(result.diagnostics)
    assert new == [], "new lint violations:\n" + "\n".join(
        d.format() for d in new
    )


@pytest.mark.analysis
def test_committed_baseline_is_empty():
    """ISSUE 1 acceptance: the tree lints clean with an EMPTY baseline."""
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
    assert baseline.entries == {}


def _import_lint_gate():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import lint_gate
    finally:
        sys.path.pop(0)
    return lint_gate


def test_lint_gate_wrapper_passes_on_clean_tree(capsys):
    lint_gate = _import_lint_gate()
    assert lint_gate.main([]) == 0
    captured = capsys.readouterr()
    assert "lint gate ok" in captured.out
    # per-rule timings go to stderr, flow tier included
    assert "callgraph" in captured.err
    assert "REP101" in captured.err


def test_lint_gate_fails_on_blown_budget(capsys):
    """A run that exceeds the wall-time budget is a gate failure even on
    a violation-free tree."""
    lint_gate = _import_lint_gate()
    assert lint_gate.main(["--budget-s", "0"]) == 1
    assert "over the" in capsys.readouterr().out


def test_cli_exit_codes_and_json(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    bad = FIXTURES / "repro" / "core" / "bad_units.py"
    # violations without a covering baseline -> exit 1, json parses
    assert lint_main([str(bad), "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"].get("REP002")
    # write a baseline accepting them -> exit 0 afterwards
    baseline_path = tmp_path / "accepted.json"
    assert (
        lint_main([str(bad), "--baseline", str(baseline_path), "--write-baseline"])
        == 0
    )
    capsys.readouterr()
    assert lint_main([str(bad), "--baseline", str(baseline_path)]) == 0


def test_cli_rule_selection_and_errors(capsys):
    clean = FIXTURES / "repro" / "goodpkg" / "helpers.py"
    assert lint_main([str(clean), "--rules", "REP001", "--no-baseline"]) == 0
    capsys.readouterr()
    assert lint_main([str(clean), "--rules", "NOPE"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "REP001",
        "REP002",
        "REP003",
        "REP004",
        "REP005",
        "REP101",
        "REP102",
        "REP103",
        "REP104",
    ):
        assert rule_id in out


def test_cli_flow_flag_runs_interprocedural_tier(capsys):
    """``--flow`` surfaces a violation the per-file tier cannot see."""
    bad = HERE / "flow_fixtures" / "repro" / "exec"
    assert lint_main([str(bad), "--no-baseline", "--no-cache"]) == 0
    capsys.readouterr()
    assert (
        lint_main([str(bad), "--no-baseline", "--no-cache", "--flow"]) == 1
    )
    assert "REP103" in capsys.readouterr().out


def test_repro_cli_dispatches_lint(capsys):
    clean = FIXTURES / "repro" / "goodpkg" / "helpers.py"
    assert repro_main(["lint", str(clean), "--no-baseline"]) == 0
    assert "0 violation(s)" in capsys.readouterr().out
