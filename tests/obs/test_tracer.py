"""Unit tests of the tracer, metrics, and exporters."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.obs import (
    NULL_TRACER,
    MetricRegistry,
    NullTracer,
    Tracer,
    chrome_trace,
    get_tracer,
    metrics_csv,
    set_tracer,
    span_skeleton,
    summary_tree,
    use_tracer,
)


class FakeClock:
    """A controllable wall clock for deterministic span durations."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        self.now += dt
        return self.now


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def tracer(clock):
    return Tracer(clock=clock)


def test_spans_nest_under_the_active_span(tracer, clock):
    with tracer.span("outer") as outer:
        clock.advance(1.0)
        with tracer.span("inner") as inner:
            clock.advance(0.5)
    assert tracer.roots == [outer]
    assert outer.children == [inner]
    assert inner.wall_duration_s == pytest.approx(0.5)
    assert outer.wall_duration_s == pytest.approx(1.5)
    assert tracer.active_span is None


def test_span_attrs_and_sim_clock(tracer):
    with tracer.span("s", category="test", n=3) as span:
        span.set_attr("extra", "x")
        span.mark_sim(0.0, 2.5)
    assert span.attrs == {"n": 3, "extra": "x"}
    assert span.sim_duration_s == pytest.approx(2.5)


def test_record_attaches_a_completed_child(tracer):
    with tracer.span("parent"):
        tracer.record("done", wall_duration_s=0.25, k=1)
    (child,) = tracer.roots[0].children
    assert child.name == "done"
    assert child.wall_duration_s == pytest.approx(0.25)
    assert child.attrs == {"k": 1}


def test_exiting_a_parent_closes_unclosed_descendants(tracer, clock):
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    clock.advance(1.0)
    outer.finish()
    assert inner.wall_end_s is not None
    assert tracer.active_span is None


def test_finish_is_idempotent(tracer, clock):
    span = tracer.span("s")
    clock.advance(1.0)
    span.finish()
    clock.advance(1.0)
    span.finish()
    assert span.wall_duration_s == pytest.approx(1.0)


def test_counters_and_gauges(tracer, clock):
    tracer.counter("hits").add(2)
    tracer.counter("hits").add()
    clock.advance(1.0)
    tracer.gauge("depth").set(3.0)
    tracer.gauge("depth").set(1.0)
    assert tracer.metrics.counter("hits").value == 3
    gauge = tracer.metrics.gauge("depth")
    assert gauge.count == 2
    assert (gauge.last, gauge.min, gauge.max) == (1.0, 1.0, 3.0)
    with pytest.raises(ValueError):
        tracer.counter("hits").add(-1)


def test_metric_registry_snapshot():
    registry = MetricRegistry(clock=lambda: 0.0)
    registry.counter("c").add(5)
    registry.gauge("g").set(2.0)
    assert registry.snapshot() == {"c": 5.0, "g": 2.0}


def test_use_tracer_installs_and_restores(tracer):
    assert get_tracer() is NULL_TRACER
    with use_tracer(tracer):
        assert get_tracer() is tracer
    assert get_tracer() is NULL_TRACER


def test_set_tracer_returns_the_previous(tracer):
    previous = set_tracer(tracer)
    try:
        assert previous is NULL_TRACER
        assert get_tracer() is tracer
    finally:
        set_tracer(previous)


def test_null_tracer_is_inert():
    null = NullTracer()
    assert not null.enabled
    with null.span("anything", k=1) as span:
        span.set_attr("a", 1)
        span.mark_sim(0.0, 1.0)
    null.record("r", wall_duration_s=1.0)
    null.counter("c").add(5)
    null.gauge("g").set(1.0)
    assert null.counter("c").value == 0
    assert null.gauge("g").count == 0
    assert null.now() == 0.0


def _sample_tracer() -> tuple[Tracer, FakeClock]:
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("root", category="experiment"):
        for i in range(3):
            with tracer.span("step", category="work", i=i) as s:
                clock.advance(0.5)
                s.mark_sim(0.0, 1.0)
            tracer.counter("steps").add(1)
            tracer.gauge("depth").set(float(i))
    return tracer, clock


def test_chrome_trace_event_shape():
    tracer, _ = _sample_tracer()
    trace = chrome_trace(tracer)
    events = trace["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    counters = [e for e in events if e["ph"] == "C"]
    assert {e["name"] for e in complete} == {"root", "step"}
    assert len([e for e in complete if e["name"] == "step"]) == 3
    for e in complete:
        assert e["ts"] >= 0 and e["dur"] >= 0
        assert {"pid", "tid", "cat", "args"} <= set(e)
    assert {e["name"] for e in counters} == {"steps", "depth"}
    # a trace must survive a JSON round-trip for the viewers to load it
    assert json.loads(json.dumps(trace)) == trace


def test_span_skeleton_aggregates_siblings():
    tracer, _ = _sample_tracer()
    assert span_skeleton(tracer) == [
        {
            "name": "root",
            "cat": "experiment",
            "count": 1,
            "children": [{"name": "step", "cat": "work", "count": 3}],
        }
    ]


def test_metrics_csv_lists_counters_and_gauges():
    tracer, _ = _sample_tracer()
    rows = list(csv.DictReader(io.StringIO(metrics_csv(tracer))))
    by_name = {row["name"]: row for row in rows}
    assert by_name["steps"]["kind"] == "counter"
    assert by_name["steps"]["value"] == "3"
    assert by_name["depth"]["kind"] == "gauge"
    assert float(by_name["depth"]["max"]) == 2.0


def test_summary_tree_mentions_spans_and_metrics():
    tracer, _ = _sample_tracer()
    text = summary_tree(tracer)
    assert "root" in text and "step" in text
    assert "3x" in text
    assert "steps" in text and "depth" in text
