"""Golden-trace and instrumentation-coverage tests of ``repro profile``.

The span *structure* of a deterministic run — names, categories, nesting,
counts, but never durations — is pinned against a committed golden JSON.
A structural drift means the instrumentation (or the pipeline beneath it)
changed and the golden must be regenerated deliberately::

    PYTHONPATH=src python -c "
    import json
    from repro.experiments.common import ExperimentConfig
    from repro.obs import span_skeleton
    from repro.obs.cli import profile_experiment
    tracer, _, _ = profile_experiment('fig6', ExperimentConfig(seed=42, fast=True))
    open('tests/obs/golden_fig6_fast_skeleton.json', 'w').write(
        json.dumps(span_skeleton(tracer), indent=1, sort_keys=True) + '\\n')"
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.experiments.common import ExperimentConfig
from repro.obs import span_skeleton
from repro.obs.cli import profile_experiment

GOLDEN = Path(__file__).parent / "golden_fig6_fast_skeleton.json"


@pytest.fixture(scope="module")
def fig6_tracer():
    tracer, result, _ = profile_experiment(
        "fig6", ExperimentConfig(seed=42, fast=True)
    )
    assert result is not None
    return tracer


def test_fig6_span_skeleton_matches_the_golden(fig6_tracer):
    produced = json.dumps(
        span_skeleton(fig6_tracer), indent=1, sort_keys=True
    ) + "\n"
    assert produced == GOLDEN.read_text(encoding="utf-8")


def test_fig6_trace_covers_at_least_four_layers(fig6_tracer):
    def categories(nodes):
        for node in nodes:
            yield node["cat"]
            yield from categories(node.get("children", []))

    seen = set(categories(span_skeleton(fig6_tracer)))
    assert {"experiment", "measurement", "partition", "app"} <= seen
    assert "runtime" in seen  # the pivot broadcast of the simulated comm


def test_profile_cli_writes_valid_chrome_trace_and_csv(tmp_path, capsys):
    trace_path = tmp_path / "t.json"
    metrics_path = tmp_path / "m.csv"
    code = cli_main(
        [
            "profile",
            "fig6",
            "--fast",
            "--quiet",
            "--trace",
            str(trace_path),
            "--metrics",
            str(metrics_path),
        ]
    )
    assert code == 0
    trace = json.loads(trace_path.read_text(encoding="utf-8"))
    events = trace["traceEvents"]
    assert events, "trace must contain events"
    for event in events:
        assert event["ph"] in {"X", "C"}
        assert event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 0
    roots = [e for e in events if e["name"] == "experiment.fig6"]
    assert len(roots) == 1
    header, *rows = metrics_path.read_text(encoding="utf-8").splitlines()
    assert header == "kind,name,count,value,min,max"
    assert any(row.startswith("counter,fpm.samples,") for row in rows)
    out = capsys.readouterr().out
    assert str(trace_path) in out


def test_profile_cli_prints_a_summary_by_default(capsys):
    code = cli_main(["profile", "fig6", "--fast", "--quiet"])
    assert code == 0
    out = capsys.readouterr().out
    assert "span tree" in out
    assert "experiment.fig6" in out


def test_profile_rejects_unknown_experiments():
    with pytest.raises(KeyError):
        profile_experiment("nope", ExperimentConfig(fast=True))
