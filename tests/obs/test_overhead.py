"""Off-by-default tracing must cost (almost) nothing.

The instrumented hot path runs under the no-op tracer unless ``repro
profile`` installs a real one.  This test bounds the no-op cost: count
the obs API calls one partition invocation makes, price them with a
micro-benchmark of the null operations, and require the estimate to stay
under 5% of the partition call itself.
"""

from __future__ import annotations

import time

import pytest

from repro.core.partition import partition_fpm
from repro.core.speed_function import SpeedFunction
from repro.obs import NULL_TRACER, NullTracer, get_tracer, use_tracer


class CountingNullTracer(NullTracer):
    """Counts obs API invocations while staying disabled and inert."""

    def __init__(self) -> None:
        self.calls = 0

    def span(self, name, category="repro", **attrs):
        self.calls += 1
        return super().span(name, category, **attrs)

    def record(self, name, category="repro", **kwargs):
        self.calls += 1
        return super().record(name, category, **kwargs)

    def counter(self, name):
        self.calls += 1
        return super().counter(name)

    def gauge(self, name):
        self.calls += 1
        return super().gauge(name)


def _models() -> list[SpeedFunction]:
    return [
        SpeedFunction.from_points(
            [10.0 * (i + 1), 300.0, 900.0],
            [1.0, 2.0 + 0.1 * i, 2.5 + 0.1 * i],
        )
        for i in range(8)
    ]


def _best_of(fn, repeats: int = 5) -> float:
    """Per-call seconds, best of ``repeats`` batches (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_default_tracer_is_the_noop_singleton():
    assert get_tracer() is NULL_TRACER
    assert not NULL_TRACER.enabled


def test_noop_tracer_overhead_is_under_five_percent():
    models = _models()

    # how many obs calls does one partition make when tracing is off?
    counting = CountingNullTracer()
    with use_tracer(counting):
        partition_fpm(models, 2000.0)
    obs_calls = counting.calls
    assert obs_calls >= 1  # the coarse span is unconditionally opened

    batch = 20
    per_partition = _best_of(
        lambda: [partition_fpm(models, 2000.0) for _ in range(batch)]
    ) / batch

    # price one null obs round-trip (span open/close via the CM protocol)
    ops = 2000

    def null_ops() -> None:
        for _ in range(ops):
            with NULL_TRACER.span("x", category="partition", total=1.0):
                pass

    per_op = _best_of(null_ops) / ops

    estimated_overhead = obs_calls * per_op
    assert estimated_overhead < 0.05 * per_partition, (
        f"no-op tracing estimated at {estimated_overhead * 1e6:.2f}us per "
        f"partition call ({obs_calls} obs calls x {per_op * 1e9:.0f}ns) "
        f"vs a {per_partition * 1e6:.2f}us partition call"
    )


def test_enabled_guard_skips_per_iteration_work():
    counting = CountingNullTracer()
    with use_tracer(counting):
        partition_fpm(_models(), 2000.0)
    # only the coarse span — no per-iteration record/gauge traffic —
    # may reach the disabled tracer from a partition call
    assert counting.calls == 1
