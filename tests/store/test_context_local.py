"""The active store is context-local, not a process-global.

Regression suite for the contextvars migration: two interleaved
contexts — asyncio tasks, threads, or copied contexts — each see only
their own ``use_store`` binding.  The partition service depends on this
to serve concurrent requests against its own store while unrelated code
(or another service) binds a different one in the same process.
"""

from __future__ import annotations

import asyncio
import contextvars
import threading

import pytest

from repro.store import ResultStore, get_store, set_store, use_store


@pytest.fixture(autouse=True)
def _clean_binding():
    """Start each test from the unbound state, restore whatever was there."""
    previous = set_store(None)
    yield
    set_store(previous)


def test_use_store_nests_and_restores(tmp_path):
    outer = ResultStore(tmp_path / "outer")
    inner = ResultStore(tmp_path / "inner")
    assert get_store() is None
    with use_store(outer):
        assert get_store() is outer
        with use_store(inner):
            assert get_store() is inner
        assert get_store() is outer
        with use_store(None):  # None disables caching inside the block
            assert get_store() is None
        assert get_store() is outer
    assert get_store() is None


def test_set_store_returns_the_previous_binding(tmp_path):
    first = ResultStore(tmp_path / "first")
    second = ResultStore(tmp_path / "second")
    assert set_store(first) is None
    assert set_store(second) is first
    assert set_store(None) is second
    assert get_store() is None


def test_two_interleaved_asyncio_tasks_do_not_share_bindings(tmp_path):
    """Two tasks ping-pong through awaits; neither sees the other's store."""
    store_a = ResultStore(tmp_path / "a")
    store_b = ResultStore(tmp_path / "b")
    checkpoints: list[tuple[str, object]] = []

    async def worker(name: str, store: ResultStore, beats: int) -> None:
        with use_store(store):
            for _ in range(beats):
                await asyncio.sleep(0)  # interleave with the other task
                checkpoints.append((name, get_store()))

    async def main():
        await asyncio.gather(
            worker("a", store_a, beats=5), worker("b", store_b, beats=5)
        )
        # task-local bindings never leaked into the main task
        assert get_store() is None

    asyncio.run(main())
    assert len(checkpoints) == 10
    for name, seen in checkpoints:
        assert seen is (store_a if name == "a" else store_b)


def test_threads_do_not_inherit_or_leak_bindings(tmp_path):
    main_store = ResultStore(tmp_path / "main")
    thread_store = ResultStore(tmp_path / "thread")
    seen_in_thread: list[object] = []

    def thread_body():
        # a bare thread starts from the default, not the parent's binding
        seen_in_thread.append(get_store())
        with use_store(thread_store):
            seen_in_thread.append(get_store())

    with use_store(main_store):
        worker = threading.Thread(target=thread_body)
        worker.start()
        worker.join()
        assert get_store() is main_store  # the thread's binding never leaked
    assert seen_in_thread == [None, thread_store]


def test_copied_contexts_carry_the_binding_to_threads(tmp_path):
    """The asyncio.to_thread pattern: a copied context sees the store."""
    store = ResultStore(tmp_path / "carried")
    with use_store(store):
        context = contextvars.copy_context()
    assert context.run(get_store) is store
    assert get_store() is None

    async def main():
        with use_store(store):
            return await asyncio.to_thread(get_store)

    assert asyncio.run(main()) is store
