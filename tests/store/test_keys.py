"""Key derivation: canonical JSON, digests, and input sensitivity."""

import dataclasses
import math

import pytest

from repro.measurement.benchmark import HybridBenchmark
from repro.store import (
    bench_key,
    canonical_json,
    code_salt,
    digest_key,
    kernel_key,
    node_key,
)


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_dataclasses_flatten(self):
        @dataclasses.dataclass(frozen=True)
        class P:
            x: int
            y: tuple

        assert canonical_json(P(1, (2, 3))) == canonical_json({"x": 1, "y": [2, 3]})

    def test_non_finite_floats_are_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"bad": math.nan})
        with pytest.raises(ValueError):
            canonical_json([math.inf])

    def test_unserialisable_values_are_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({"f": lambda: None})


class TestDigestKey:
    def test_deterministic(self):
        assert digest_key("fpm", {"a": 1}) == digest_key("fpm", {"a": 1})

    def test_kind_participates(self):
        assert digest_key("fpm", {"a": 1}) != digest_key("result", {"a": 1})

    def test_salt_participates(self):
        assert digest_key("fpm", {"a": 1}, "s1") != digest_key("fpm", {"a": 1}, "s2")

    def test_default_salt_is_code_salt(self):
        assert digest_key("fpm", {}) == digest_key("fpm", {}, code_salt())

    def test_any_key_field_change_changes_the_digest(self):
        base = {"seed": 42, "noise": 0.02, "fast": False}
        d0 = digest_key("result", base)
        for field, value in (("seed", 43), ("noise", 0.021), ("fast", True)):
            assert digest_key("result", {**base, field: value}) != d0


class TestSpecKeys:
    def test_node_key_covers_every_field(self, node):
        plain = node_key(node)
        assert plain["block_size"] == node.block_size
        assert plain["num_sockets"] == node.num_sockets
        assert len(plain["gpus"]) == len(node.gpus)

    def test_changed_hardware_changes_the_digest(self, node):
        faster = dataclasses.replace(node, block_size=node.block_size * 2)
        assert digest_key("fpm", node_key(node)) != digest_key("fpm", node_key(faster))

    def test_bench_key_pins_seed_noise_and_criterion(self, node):
        a = bench_key(HybridBenchmark(node, seed=1, noise_sigma=0.01))
        b = bench_key(HybridBenchmark(node, seed=2, noise_sigma=0.01))
        c = bench_key(HybridBenchmark(node, seed=1, noise_sigma=0.02))
        assert a != b and a != c
        assert "criterion" in a and a["criterion"]["min_repetitions"] >= 1

    def test_kernel_key_distinguishes_kernels(self, bench):
        cpu = kernel_key(bench.socket_kernel(0, 5))
        cpu_contended = kernel_key(bench.socket_kernel(0, 5, gpu_active=True))
        gpu = kernel_key(bench.gpu_kernel(0, version=3))
        assert cpu != cpu_contended
        assert cpu != gpu

    def test_kernel_key_canonicalises_infinite_ranges(self, bench):
        key = kernel_key(bench.socket_kernel(0, 5))
        canonical_json(key)  # must not raise even for unbounded kernels
