"""ResultStore: round trips, invalidation, corruption, and counters."""

import json

import pytest

from repro.obs import Tracer, use_tracer
from repro.store import ResultStore, get_store, set_store, use_store


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


class TestRoundTrip:
    def test_put_then_get(self, store):
        key = {"experiment": "fig6", "seed": 42}
        store.put("result", key, {"value": [1, 2, 3]})
        assert store.get("result", key) == {"value": [1, 2, 3]}

    def test_miss_on_absent_key(self, store):
        assert store.get("result", {"seed": 1}) is None

    def test_kinds_are_disjoint(self, store):
        store.put("fpm", {"k": 1}, "model")
        assert store.get("partition", {"k": 1}) is None

    def test_unknown_kind_rejected(self, store):
        with pytest.raises(ValueError, match="unknown artifact kind"):
            store.put("figments", {}, 1)

    def test_overwrite_wins(self, store):
        store.put("result", {"k": 1}, "old")
        store.put("result", {"k": 1}, "new")
        assert store.get("result", {"k": 1}) == "new"


class TestInvalidation:
    """Satellite 4: every changed input or damaged file forces a rebuild."""

    def test_changed_key_field_misses(self, store):
        store.put("result", {"seed": 42, "fast": True}, "cached")
        assert store.get("result", {"seed": 43, "fast": True}) is None
        assert store.get("result", {"seed": 42, "fast": False}) is None

    def test_changed_salt_orphans_entries(self, tmp_path):
        old = ResultStore(tmp_path, salt="v1")
        old.put("result", {"k": 1}, "payload")
        upgraded = ResultStore(tmp_path, salt="v2")
        assert upgraded.get("result", {"k": 1}) is None

    def test_corrupted_file_is_a_miss(self, store):
        key = {"k": 1}
        path = store.put("result", key, "payload")
        path.write_text("{ not json", encoding="utf-8")
        assert store.get("result", key) is None
        # the rebuild's put repairs the entry in place
        store.put("result", key, "rebuilt")
        assert store.get("result", key) == "rebuilt"

    def test_tampered_key_is_a_miss(self, store):
        # an envelope whose recorded key no longer matches its digest
        path = store.put("result", {"k": 1}, "payload")
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["key"] = {"k": 2}
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert store.get("result", {"k": 1}) is None

    def test_explicit_invalidate(self, store):
        store.put("result", {"k": 1}, "payload")
        assert store.invalidate("result", {"k": 1}) is True
        assert store.get("result", {"k": 1}) is None
        assert store.invalidate("result", {"k": 1}) is False

    def test_clear_by_kind_and_all(self, store):
        store.put("result", {"k": 1}, "a")
        store.put("fpm", {"k": 1}, "b")
        assert store.clear("result") == 1
        assert len(store.entries()) == 1
        assert store.clear() == 1
        assert store.entries() == []


class TestCounters:
    def test_hit_miss_put_counters(self, store):
        tracer = Tracer()
        with use_tracer(tracer):
            store.get("result", {"k": 1})
            store.put("result", {"k": 1}, "x")
            store.get("result", {"k": 1})
        metrics = tracer.metrics.snapshot()
        assert metrics["store.miss"] == 1
        assert metrics["store.put"] == 1
        assert metrics["store.hit"] == 1

    def test_corrupt_counter(self, store):
        path = store.put("result", {"k": 1}, "x")
        path.write_text("garbage", encoding="utf-8")
        tracer = Tracer()
        with use_tracer(tracer):
            assert store.get("result", {"k": 1}) is None
        metrics = tracer.metrics.snapshot()
        assert metrics["store.corrupt"] == 1

    def test_get_and_put_emit_spans(self, store):
        tracer = Tracer()
        with use_tracer(tracer):
            store.put("result", {"k": 1}, "x")
            hit = store.get("result", {"k": 1})
        assert hit == "x"
        names = [s.name for s in tracer.roots]
        assert names == ["store.put", "store.get"]
        assert tracer.roots[1].attrs["hit"] is True


class TestActiveStore:
    def test_off_by_default(self):
        assert get_store() is None

    def test_use_store_restores_previous(self, store):
        with use_store(store):
            assert get_store() is store
            with use_store(None):
                assert get_store() is None
            assert get_store() is store
        assert get_store() is None

    def test_set_store_returns_previous(self, store):
        assert set_store(store) is None
        try:
            assert get_store() is store
        finally:
            assert set_store(None) is store


def test_repr_is_stable(store):
    assert "ResultStore" in repr(store)


def test_envelope_is_self_describing(store):
    path = store.put("fpm", {"model": "s6"}, {"speed": 1.0})
    envelope = json.loads(path.read_text(encoding="utf-8"))
    assert envelope["kind"] == "fpm"
    assert envelope["key"] == {"model": "s6"}
    assert envelope["digest"] == path.stem
    assert envelope["salt"] == store.salt
