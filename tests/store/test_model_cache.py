"""Store-backed model building: warm replays are bit-identical to cold."""

import pytest

from repro.core.serialization import fpm_to_dict
from repro.experiments.common import make_app
from repro.measurement.fpm_builder import FpmBuilder, SizeGrid
from repro.measurement.online import PartialFpmBuilder, online_partition
from repro.obs import Tracer, use_tracer
from repro.store import ResultStore, use_store


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


class TestFpmBuilderCache:
    def test_warm_build_is_bit_identical(self, quiet_bench, store):
        builder = FpmBuilder(quiet_bench)
        kernel = quiet_bench.socket_kernel(0, 5)
        grid = SizeGrid.geometric(4.0, 400.0, 6)
        cold = builder.build(kernel, grid, adaptive=True, name="s5")
        with use_store(store):
            miss = builder.build(kernel, grid, adaptive=True, name="s5")
            hit = builder.build(kernel, grid, adaptive=True, name="s5")
        assert fpm_to_dict(cold) == fpm_to_dict(miss) == fpm_to_dict(hit)
        assert len(store.entries("fpm")) == 1

    def test_changed_grid_rebuilds(self, quiet_bench, store):
        builder = FpmBuilder(quiet_bench)
        kernel = quiet_bench.socket_kernel(0, 5)
        with use_store(store):
            builder.build(kernel, SizeGrid.geometric(4.0, 400.0, 6), name="s5")
            builder.build(kernel, SizeGrid.geometric(4.0, 400.0, 7), name="s5")
        assert len(store.entries("fpm")) == 2

    def test_contention_state_participates(self, quiet_bench, store):
        builder = FpmBuilder(quiet_bench)
        kernel = quiet_bench.gpu_kernel(0)
        grid = SizeGrid.geometric(8.0, 200.0, 4)
        with use_store(store):
            a = builder.build(kernel, grid, busy_cpu_cores=0)
            b = builder.build(kernel, grid, busy_cpu_cores=4)
        assert len(store.entries("fpm")) == 2
        assert a.speed(100.0) != b.speed(100.0)

    def test_app_models_replay_through_the_store(self, fast_config, store):
        cold = make_app(fast_config)
        with use_store(store):
            first = make_app(fast_config)
            tracer = Tracer()
            with use_tracer(tracer):
                warm = make_app(fast_config)
        for name in cold._models:
            assert fpm_to_dict(warm._models[name]) == fpm_to_dict(cold._models[name])
            assert fpm_to_dict(first._models[name]) == fpm_to_dict(cold._models[name])
        metrics = tracer.metrics.snapshot()
        assert metrics["store.hit"] == len(cold._models)
        assert "store.miss" not in metrics


class TestOnlinePartitionCache:
    def _builders(self, bench):
        kernel = bench.socket_kernel(0, 5)
        other = bench.socket_kernel(1, 6)
        return [
            PartialFpmBuilder(bench=bench, kernel=kernel, name="s5"),
            PartialFpmBuilder(bench=bench, kernel=other, name="s6"),
        ]

    def test_warm_run_replays_the_history(self, quiet_bench, store):
        cold = online_partition(self._builders(quiet_bench), 900)
        with use_store(store):
            miss = online_partition(self._builders(quiet_bench), 900)
            warm = online_partition(self._builders(quiet_bench), 900)
        assert miss == cold
        assert warm == cold
        assert len(store.entries("partition")) == 1

    def test_prewarmed_builders_bypass_the_cache(self, quiet_bench, store):
        with use_store(store):
            online_partition(self._builders(quiet_bench), 900)
            warmed = self._builders(quiet_bench)
            for b in warmed:
                b.bootstrap(4.0, 900.0)
            online_partition(warmed, 900)
        # the pre-warmed run must not have added a second entry
        assert len(store.entries("partition")) == 1

    def test_loop_parameters_participate(self, quiet_bench, store):
        with use_store(store):
            online_partition(self._builders(quiet_bench), 900)
            online_partition(self._builders(quiet_bench), 900, max_rounds=5)
            online_partition(self._builders(quiet_bench), 901)
        assert len(store.entries("partition")) == 3
