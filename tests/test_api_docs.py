"""The API-reference generator stays in sync with the package."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


class TestApiDocsGenerator:
    def test_generator_runs_and_covers_all_packages(self, tmp_path):
        out = tmp_path / "api.md"
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "gen_api_docs.py"), str(out)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        text = out.read_text()
        for package in (
            "repro.core.partition",
            "repro.kernels.gemm_gpu",
            "repro.measurement.fpm_builder",
            "repro.platform.device",
            "repro.app.matmul",
            "repro.runtime.mpi_sim",
        ):
            assert f"## `{package}`" in text, package

    def test_committed_reference_not_stale(self):
        """docs/api.md mentions every subpackage's flagship symbol."""
        text = (REPO / "docs" / "api.md").read_text()
        for symbol in (
            "partition_fpm",
            "GpuGemmKernelV3",
            "FpmBuilder",
            "SimulatedGpu",
            "HybridMatMul",
            "hierarchical_partition",
            "SpeedSurface",
        ):
            assert symbol in text, symbol

    def test_no_undocumented_public_modules(self):
        """Every repro module carries a module docstring."""
        import importlib
        import pkgutil

        import repro

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert missing == []
