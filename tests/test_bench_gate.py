"""The bench-gate comparison logic and artifact discovery."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_gate", REPO / "tools" / "bench_gate.py"
)
bench_gate = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_gate", bench_gate)
_spec.loader.exec_module(bench_gate)


def _write_artifact(path: Path, timings: dict[str, float]) -> None:
    record = {
        "benchmarks": [
            {"name": name, "stats": {"min": seconds}}
            for name, seconds in timings.items()
        ]
    }
    path.write_text(json.dumps(record))


class TestLoadBenchmarks:
    def test_extracts_best_of_times(self, tmp_path):
        artifact = tmp_path / "BENCH_1.json"
        _write_artifact(artifact, {"a": 0.5, "b": 2.0})
        assert bench_gate.load_benchmarks(artifact) == {"a": 0.5, "b": 2.0}


class TestFindBaseline:
    def test_picks_highest_numbered_other_artifact(self, tmp_path):
        for n in (2, 8, 9):
            _write_artifact(tmp_path / f"BENCH_{n}.json", {"a": 1.0})
        out = tmp_path / "BENCH_9.json"
        assert bench_gate.find_baseline(tmp_path, out) == (
            tmp_path / "BENCH_8.json"
        )

    def test_ignores_non_sequence_files(self, tmp_path):
        (tmp_path / "BENCH_extra.json").write_text("{}")
        out = tmp_path / "BENCH_9.json"
        _write_artifact(out, {"a": 1.0})
        assert bench_gate.find_baseline(tmp_path, out) is None


class TestCompare:
    def test_regression_beyond_tolerance_fails(self):
        regressions, lines = bench_gate.compare(
            {"fast": 1.0, "slow": 1.0}, {"fast": 1.1, "slow": 1.5}, 0.20
        )
        assert regressions == ["slow"]
        assert any("REGRESSED" in line and "slow" in line for line in lines)

    def test_improvement_and_within_tolerance_pass(self):
        regressions, _ = bench_gate.compare(
            {"a": 1.0, "b": 2.0}, {"a": 0.4, "b": 2.3}, 0.20
        )
        assert regressions == []

    def test_only_common_benchmarks_are_compared(self):
        regressions, lines = bench_gate.compare(
            {"gone": 1.0}, {"new": 99.0}, 0.20
        )
        assert regressions == []
        assert lines == []

    def test_zero_baseline_is_skipped(self):
        regressions, lines = bench_gate.compare({"z": 0.0}, {"z": 5.0}, 0.20)
        assert regressions == []
        assert lines == []


class TestDefaults:
    def test_default_artifact_tracks_current_pr(self):
        assert bench_gate.DEFAULT_OUT == "BENCH_10.json"

    def test_default_out_has_a_committed_predecessor(self):
        """The shipped baseline the next run will be diffed against."""
        out = REPO / bench_gate.DEFAULT_OUT
        baseline = bench_gate.find_baseline(REPO, out)
        assert baseline is not None
        assert bench_gate.load_benchmarks(baseline)
