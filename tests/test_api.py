"""The ``repro.api`` facade: forwarding, keyword-only, deprecation shims."""

import inspect

import pytest

from repro import api
from repro.core.partition import (
    geometric_partition,
    partition_cpm,
    partition_fpm,
    partition_homogeneous,
)
from repro.experiments.fig6_process_times import Fig6Result
from repro.store import ResultStore, use_store


@pytest.fixture(scope="module")
def models():
    from repro.experiments.common import ExperimentConfig, make_app

    app = make_app(ExperimentConfig(seed=7, noise_sigma=0.01, fast=True))
    return list(app._models.values())


class TestKeywordOnly:
    @pytest.mark.parametrize(
        "func", [api.build_models, api.run_report], ids=lambda f: f.__name__
    )
    def test_no_positional_arguments(self, func):
        params = inspect.signature(func).parameters.values()
        assert all(p.kind is inspect.Parameter.KEYWORD_ONLY for p in params)

    def test_run_experiment_takes_only_the_name_positionally(self):
        params = list(inspect.signature(api.run_experiment).parameters.values())
        assert params[0].name == "name"
        assert all(p.kind is inspect.Parameter.KEYWORD_ONLY for p in params[1:])


class TestForwarding:
    def test_build_models_matches_the_app_path(self, fast_config, tmp_path):
        from repro.experiments.common import make_app

        with use_store(ResultStore(tmp_path / "cache")):
            via_api = api.build_models(
                seed=fast_config.seed,
                noise_sigma=fast_config.noise_sigma,
                gpu_version=fast_config.gpu_version,
                max_blocks=fast_config.model_max_blocks,
                cpu_points=8,
                gpu_points=10,
                adaptive=False,
            )
            via_app = make_app(fast_config)._models
        assert set(via_api) == set(via_app)

    @pytest.mark.parametrize(
        ("strategy", "reference"),
        [("fpm", partition_fpm), ("geometric", geometric_partition)],
    )
    def test_partition_dispatch(self, models, strategy, reference):
        assert api.partition(models, 3000.0, strategy=strategy) == reference(
            models, 3000.0
        )

    def test_partition_cpm_takes_constant_speeds(self):
        speeds = [10.0, 20.0, 30.0]
        assert api.partition(speeds, 3000.0, strategy="cpm") == partition_cpm(
            speeds, 3000.0
        )

    def test_partition_homogeneous(self, models):
        expected = partition_homogeneous(len(models), 3000.0)
        assert api.partition(models, 3000.0, strategy="homogeneous") == expected

    def test_partition_rejects_unknown_strategy(self, models):
        with pytest.raises(ValueError, match="unknown strategy"):
            api.partition(models, 3000.0, strategy="magic")

    def test_run_and_load_share_the_store(self, fast_config, tmp_path):
        store = ResultStore(tmp_path / "cache")
        assert api.load_cached_result("fig6", config=fast_config, store=store) is None
        ran = api.run_experiment("fig6", config=fast_config, store=store)
        assert isinstance(ran, Fig6Result)
        assert api.load_cached_result("fig6", config=fast_config, store=store) == ran


class TestDeprecationShims:
    def test_report_full_report_warns_once(self, fast_config):
        from repro.experiments import report

        with pytest.deprecated_call(match="run_full_report"):
            report.full_report(fast_config)

    def test_cli_experiments_dict_warns_and_matches_the_registry(self):
        import repro.cli as cli
        from repro.experiments.registry import all_experiments

        with pytest.deprecated_call(match="registry"):
            legacy = cli._EXPERIMENTS
        runnable = {e.name for e in all_experiments() if e.kind != "ablation"}
        assert set(legacy) == runnable
        for name, (run, fmt) in legacy.items():
            assert callable(run) and callable(fmt)

    def test_cli_has_no_other_hidden_attributes(self):
        import repro.cli as cli

        with pytest.raises(AttributeError):
            cli._NOT_A_THING
