"""Unit tests for speed-function fitting and cross-validation."""

import math

import pytest

from repro.core.fitting import (
    STANDARD_FITTERS,
    best_fit,
    cross_validate,
    fit_constant,
    fit_log_polynomial,
    fit_piecewise_linear,
    fit_rational_saturation,
)
from repro.core.speed_function import SpeedSample


def samples_from(fn, sizes):
    return [SpeedSample(x, fn(x)) for x in sizes]


SIZES = [10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0]


class TestPiecewiseLinear:
    def test_interpolates_exactly(self):
        samples = samples_from(lambda x: 50 + x / 100, SIZES)
        model = fit_piecewise_linear(samples)
        for s in samples:
            assert model.speed(s.size) == pytest.approx(s.speed)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_piecewise_linear([])


class TestConstant:
    def test_flat_sample_recovered(self):
        samples = samples_from(lambda x: 42.0, SIZES)
        model = fit_constant(samples)
        assert model.speed(500) == pytest.approx(42.0)

    def test_preserves_total_time(self):
        samples = samples_from(lambda x: 50 + x / 10, SIZES)
        model = fit_constant(samples)
        total_time = sum(s.size / s.speed for s in samples)
        total_size = sum(s.size for s in samples)
        assert total_size / model.speed(1) == pytest.approx(total_time)


class TestRationalSaturation:
    def test_recovers_generating_parameters(self):
        truth = lambda x: 900 * x / (x + 60)
        samples = samples_from(truth, SIZES)
        model = fit_rational_saturation(samples)
        for x in (20, 200, 2000):
            assert model.speed(x) == pytest.approx(truth(x), rel=0.05)

    def test_extends_beyond_sample_range(self):
        truth = lambda x: 900 * x / (x + 60)
        model = fit_rational_saturation(samples_from(truth, SIZES))
        assert model.max_size > max(SIZES)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_rational_saturation([SpeedSample(1, 1)])

    def test_degenerate_growing_sample_stays_positive(self):
        # speed growing superlinearly: intercept <= 0 fallback path
        samples = samples_from(lambda x: x**1.2, SIZES)
        model = fit_rational_saturation(samples)
        for x in SIZES:
            assert model.speed(x) > 0


class TestLogPolynomial:
    def test_fits_smooth_curve(self):
        truth = lambda x: 100 - 20 * (math.log(x) - 4) ** 2 / 10
        samples = samples_from(lambda x: max(truth(x), 5), SIZES)
        model = fit_log_polynomial(samples, degree=2)
        mid = 300.0
        assert model.speed(mid) == pytest.approx(max(truth(mid), 5), rel=0.15)

    def test_positive_clipping(self):
        samples = samples_from(lambda x: max(1.0, 100 - x / 20), SIZES)
        model = fit_log_polynomial(samples, degree=1)
        for x in SIZES:
            assert model.speed(x) > 0

    def test_needs_enough_points(self):
        with pytest.raises(ValueError):
            fit_log_polynomial(samples_from(lambda x: 1.0, SIZES[:2]), degree=2)


class TestCrossValidation:
    def test_perfect_fitter_scores_zero_on_linear_data(self):
        samples = samples_from(lambda x: 50 + x / 100, SIZES)
        # a straight line in x: piecewise linear predicts interior points...
        # but sizes are uneven; use constant data for an exact-zero score
        flat = samples_from(lambda x: 42.0, SIZES)
        score = cross_validate(fit_piecewise_linear, flat, "pl")
        assert score.mean_relative_error == pytest.approx(0.0, abs=1e-12)

    def test_constant_fitter_penalised_on_curved_data(self):
        curved = samples_from(lambda x: 900 * x / (x + 60), SIZES)
        const = cross_validate(fit_constant, curved)
        rational = cross_validate(fit_rational_saturation, curved)
        assert rational.mean_relative_error < const.mean_relative_error

    def test_needs_interior_points(self):
        with pytest.raises(ValueError):
            cross_validate(fit_constant, samples_from(lambda x: 1.0, SIZES[:3]))


class TestBestFit:
    def test_saturating_data_picks_rational(self):
        curved = samples_from(lambda x: 900 * x / (x + 60), SIZES)
        name, model, score = best_fit(curved)
        assert name == "rational-saturation"
        assert score.mean_relative_error < 0.02

    def test_flat_data_accepts_cheap_models(self):
        flat = samples_from(lambda x: 42.0, SIZES)
        name, model, score = best_fit(flat)
        assert score.mean_relative_error < 1e-6
        assert model.speed(100) == pytest.approx(42.0)

    def test_cliff_data_picks_piecewise(self):
        """The GPU memory cliff defeats smooth global fits — the FPM's
        piecewise representation wins (the module's design argument)."""
        cliff = lambda x: 950.0 if x <= 1200 else 450.0
        sizes = [100, 400, 800, 1100, 1190, 1250, 1600, 2400, 3600]
        samples = samples_from(cliff, sizes)
        name, _, _ = best_fit(samples)
        assert name == "piecewise-linear"

    def test_all_standard_fitters_usable(self):
        curved = samples_from(lambda x: 500 * x / (x + 100), SIZES)
        for name, fitter in STANDARD_FITTERS.items():
            model = fitter(curved)
            assert model.speed(100) > 0
