"""Unit and property tests for hierarchical (cluster-level) partitioning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchical import (
    HierarchicalPartition,
    aggregate_speed_function,
    hierarchical_partition,
)
from repro.core.integer import makespan
from repro.core.partition import partition_fpm
from repro.core.speed_function import SpeedFunction


def constant(speed):
    return SpeedFunction.constant(speed)


def ramped(peak, half):
    sizes = [half / 4, half, 2 * half, 8 * half, 32 * half]
    speeds = [peak * s / (s + half) for s in sizes]
    return SpeedFunction.from_points(sizes, speeds)


class TestAggregateSpeedFunction:
    def test_constants_add_up(self):
        agg = aggregate_speed_function([constant(10), constant(30)], [100.0])
        assert agg.speed(100) == pytest.approx(40.0, rel=1e-6)

    def test_monotone_sampling(self):
        agg = aggregate_speed_function(
            [ramped(900, 60), constant(100)], [50.0, 500.0, 5000.0]
        )
        assert len(agg) == 3

    def test_aggregate_at_least_fastest_unit(self):
        units = [ramped(900, 60), constant(100)]
        agg = aggregate_speed_function(units, [1000.0])
        assert agg.speed(1000) > 900 * 1000 / 1060  # more than the GPU alone

    def test_bounded_only_when_all_bounded(self):
        bounded = SpeedFunction.from_points([1, 100], [10, 10], bounded=True)
        mixed = aggregate_speed_function([bounded, constant(5)], [50.0])
        assert not mixed.bounded
        both = aggregate_speed_function([bounded, bounded], [50.0, 150.0])
        assert both.bounded

    def test_capacity_truncates_grid(self):
        bounded = SpeedFunction.from_points([1, 100], [10, 10], bounded=True)
        agg = aggregate_speed_function([bounded], [50.0, 99.0, 500.0])
        assert agg.max_size == 99.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_speed_function([], [1.0])
        with pytest.raises(ValueError):
            aggregate_speed_function([constant(1)], [])


class TestHierarchicalPartition:
    def test_sums(self):
        nodes = [[constant(10), constant(20)], [constant(30)]]
        part = hierarchical_partition(nodes, 600)
        assert sum(part.node_allocations) == 600
        assert sum(part.flat) == 600

    def test_matches_flat_partitioning(self):
        """The headline invariant: hierarchy does not change the answer."""
        nodes = [
            [ramped(900, 60), constant(105), constant(105)],
            [constant(90), constant(90)],
            [ramped(200, 40)],
        ]
        total = 3600
        hier = hierarchical_partition(nodes, total)
        flat_models = [m for node in nodes for m in node]
        flat = partition_fpm(flat_models, float(total))
        for h, f in zip(hier.flat, flat):
            assert abs(h - f) <= max(4.0, 0.05 * f)

    def test_balanced_across_all_units(self):
        nodes = [
            [ramped(900, 60), constant(105)],
            [constant(90), constant(45)],
        ]
        part = hierarchical_partition(nodes, 2000)
        flat_models = [m for node in nodes for m in node]
        span = makespan(flat_models, part.flat)
        times = [
            m.time(a) for m, a in zip(flat_models, part.flat) if a > 0
        ]
        assert span / min(times) < 1.1

    def test_zero_share_node(self):
        """A node vastly slower than the rest may receive nothing."""
        nodes = [[constant(1e6)], [constant(1e-3)]]
        part = hierarchical_partition(nodes, 100)
        assert part.node_allocations[0] >= 99

    def test_validation_of_result_dataclass(self):
        with pytest.raises(ValueError, match="sum"):
            HierarchicalPartition(
                node_allocations=(10,), unit_allocations=((4, 4),)
            )

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            hierarchical_partition([], 10)

    @given(
        st.lists(
            st.lists(
                st.floats(min_value=1.0, max_value=500.0),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=4,
        ),
        st.integers(min_value=50, max_value=5000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_sums_and_nonnegative(self, speeds, total):
        nodes = [[constant(s) for s in unit] for unit in speeds]
        part = hierarchical_partition(nodes, total)
        assert sum(part.flat) == total
        assert all(a >= 0 for a in part.flat)
