"""Unit and property tests for piecewise-linear speed functions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.speed_function import SpeedFunction, SpeedSample


def fn(points, bounded=False):
    return SpeedFunction.from_points(
        [p[0] for p in points], [p[1] for p in points], bounded=bounded
    )


class TestConstruction:
    def test_needs_samples(self):
        with pytest.raises(ValueError):
            SpeedFunction([])

    def test_rejects_unsorted_sizes(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            fn([(2, 10), (1, 10)])

    def test_rejects_duplicate_sizes(self):
        with pytest.raises(ValueError):
            fn([(1, 10), (1, 20)])

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError):
            SpeedSample(1.0, 0.0)

    def test_from_points_length_mismatch(self):
        with pytest.raises(ValueError):
            SpeedFunction.from_points([1, 2], [10])

    def test_constant_factory(self):
        c = SpeedFunction.constant(42.0)
        assert c.speed(0.1) == 42.0
        assert c.speed(1e9) == 42.0


class TestEvaluation:
    def test_exact_at_samples(self):
        f = fn([(1, 10), (2, 20), (4, 15)])
        assert f.speed(1) == 10
        assert f.speed(2) == 20
        assert f.speed(4) == 15

    def test_linear_between_samples(self):
        f = fn([(0.5, 10), (2.5, 30)])
        assert f.speed(1.5) == pytest.approx(20.0)

    def test_constant_extension_below(self):
        f = fn([(10, 50), (20, 80)])
        assert f.speed(1) == 50

    def test_constant_extension_above_unbounded(self):
        f = fn([(10, 50), (20, 80)])
        assert f.speed(100) == 80

    def test_bounded_raises_above_range(self):
        f = fn([(10, 50), (20, 80)], bounded=True)
        with pytest.raises(ValueError, match="bounded"):
            f.speed(21)

    def test_bounded_allows_at_range_end(self):
        f = fn([(10, 50), (20, 80)], bounded=True)
        assert f.speed(20) == 80


class TestTime:
    def test_time_zero_at_zero(self):
        f = fn([(1, 10)])
        assert f.time(0.0) == 0.0

    def test_time_is_size_over_speed(self):
        f = fn([(1, 10), (100, 10)])
        assert f.time(50) == pytest.approx(5.0)

    def test_inverse_recovers_size(self):
        f = fn([(10, 10), (100, 40), (1000, 25)])
        for x in (5.0, 37.0, 250.0, 900.0):
            t = f.time(x)
            assert f.max_size_within_time(t) == pytest.approx(x, rel=1e-6)

    def test_inverse_zero_budget(self):
        f = fn([(1, 10)])
        assert f.max_size_within_time(0.0) == 0.0

    def test_inverse_caps_at_bounded_range(self):
        f = fn([(10, 10), (100, 10)], bounded=True)
        assert f.max_size_within_time(1e12) == 100.0

    def test_monotonic_check_passes_for_constant(self):
        f = fn([(1, 10), (100, 10)])
        assert f.is_time_monotonic()

    def test_monotonic_check_fails_for_superlinear_jump(self):
        # speed jumping 10 -> 1000 makes time dip
        f = fn([(10, 10), (11, 1000)])
        assert not f.is_time_monotonic()

    def test_repair_makes_time_monotonic(self):
        f = fn([(10, 10), (11, 1000), (50, 500)])
        repaired = f.with_monotonic_time()
        assert repaired.is_time_monotonic()
        # repair never raises speeds
        for s_old, s_new in zip(f.samples, repaired.samples):
            assert s_new.speed <= s_old.speed + 1e-12


class TestTransforms:
    def test_scaled(self):
        f = fn([(1, 10), (2, 20)])
        g = f.scaled(2.0)
        assert g.speed(1.5) == pytest.approx(2 * f.speed(1.5))

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fn([(1, 10)]).scaled(0.0)

    def test_len(self):
        assert len(fn([(1, 1), (2, 2), (3, 3)])) == 3


@st.composite
def speed_functions(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    sizes = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.1, max_value=1e4),
                min_size=n,
                max_size=n,
                unique=True,
            )
        )
    )
    speeds = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=1e4), min_size=n, max_size=n
        )
    )
    return SpeedFunction.from_points(sizes, speeds)


class TestProperties:
    @given(speed_functions(), st.floats(min_value=0, max_value=2e4))
    @settings(max_examples=100)
    def test_speed_within_sample_envelope(self, f, x):
        s = f.speed(x)
        lo = min(p.speed for p in f.samples)
        hi = max(p.speed for p in f.samples)
        assert lo - 1e-9 <= s <= hi + 1e-9

    @given(speed_functions())
    @settings(max_examples=100)
    def test_repair_idempotent(self, f):
        once = f.with_monotonic_time()
        twice = once.with_monotonic_time()
        assert [s.speed for s in once.samples] == pytest.approx(
            [s.speed for s in twice.samples]
        )
        assert once.is_time_monotonic()

    @given(speed_functions(), st.floats(min_value=1e-3, max_value=1e4))
    @settings(max_examples=100)
    def test_inverse_time_respects_budget(self, f, budget):
        g = f.with_monotonic_time()
        x = g.max_size_within_time(budget)
        if x > 0:
            assert g.time(x) <= budget * (1 + 1e-6)

    @given(speed_functions(), st.floats(min_value=1e-3, max_value=1e4))
    @settings(max_examples=100)
    def test_exact_inverse_agrees_with_bisection(self, f, budget):
        """The closed-form segment inversion equals numerical bisection."""
        g = f.with_monotonic_time()
        knots = g._knot_times()
        if knots is None:
            return  # non-monotone: only the bisection path exists
        exact = g._invert_time_exact(budget, knots)
        numeric = g._invert_time_bisect(budget)
        assert exact == pytest.approx(numeric, rel=1e-6, abs=1e-6)

    @given(speed_functions(), st.floats(min_value=1e-3, max_value=1e4))
    @settings(max_examples=100)
    def test_inverse_is_tight(self, f, budget):
        """No strictly larger size still fits the budget (maximality)."""
        g = f.with_monotonic_time()
        x = g.max_size_within_time(budget)
        cap = g.max_size if g.bounded else math.inf
        bigger = min(x * (1 + 1e-4) + 1e-6, cap)
        if bigger > x:
            assert g.time(bigger) >= budget * (1 - 1e-4)


class TestBatchEvaluation:
    """speed_batch/time_batch must agree with the scalar paths exactly."""

    def test_matches_scalar_everywhere(self):
        f = fn([(1, 10), (2, 20), (4, 15)])
        xs = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0]
        assert list(f.speed_batch(xs)) == [f.speed(x) for x in xs]
        assert list(f.time_batch(xs)) == [f.time(x) for x in xs]

    def test_zero_size_has_zero_time(self):
        f = fn([(1, 10), (2, 20)])
        assert f.time_batch([0.0])[0] == 0.0

    def test_negative_sizes_rejected(self):
        f = fn([(1, 10), (2, 20)])
        with pytest.raises(ValueError):
            f.speed_batch([1.0, -0.5])

    def test_bounded_range_enforced(self):
        f = fn([(1, 10), (2, 20)], bounded=True)
        assert list(f.speed_batch([1.5, 2.0])) == [f.speed(1.5), f.speed(2.0)]
        with pytest.raises(ValueError, match="bounded model range"):
            f.speed_batch([1.0, 2.5])

    def test_empty_input(self):
        f = fn([(1, 10), (2, 20)])
        assert f.speed_batch([]).shape == (0,)

    @given(
        speed_functions(),
        st.lists(st.floats(min_value=0, max_value=2e4), max_size=16),
    )
    @settings(max_examples=100)
    def test_batch_equals_scalar(self, f, xs):
        batch = f.speed_batch(xs)
        for x, s in zip(xs, batch):
            assert s == pytest.approx(f.speed(x), rel=1e-12, abs=1e-12)


class TestRayIntersection:
    def test_constant_head_branch(self):
        f = fn([(10, 50), (20, 80)])
        # steep ray crosses the constant-speed head: x = s0 / slope
        assert f.size_at_ray(50.0) == pytest.approx(1.0)

    def test_constant_tail_branch(self):
        f = fn([(10, 50), (20, 80)])
        # shallow ray crosses the constant tail: x = s1 / slope
        assert f.size_at_ray(0.1) == pytest.approx(800.0)

    def test_bounded_tail_clamps_to_range(self):
        f = fn([(10, 50), (20, 80)], bounded=True)
        assert f.size_at_ray(0.1) == 20.0

    def test_cap_wins(self):
        f = fn([(10, 50), (20, 80)])
        assert f.size_at_ray(0.1, cap=100.0) == 100.0

    def test_interior_segment_solved_in_closed_form(self):
        f = fn([(10, 50), (20, 80)])
        # on the segment: s(x) = 50 + 3 (x - 10); slope 5 -> 5x = 20 + 3x
        assert f.size_at_ray(5.0) == pytest.approx(10.0)

    @given(speed_functions(), st.floats(min_value=1e-3, max_value=1e3))
    @settings(max_examples=100)
    def test_exact_ray_agrees_with_bisection(self, f, slope):
        g = f.with_monotonic_time()
        if g._knot_times() is None:
            return  # non-monotone: only the bisection path exists
        exact = g._ray_exact(slope, math.inf)
        numeric = g._ray_bisect(slope, math.inf)
        assert exact == pytest.approx(numeric, rel=1e-6, abs=1e-6)

    def test_inverse_memo_returns_identical_results(self):
        f = fn([(1, 10), (2, 20), (4, 15)])
        first = f._invert_time_bisect(0.13)
        assert f._invert_cache[0.13] == first
        assert f._invert_time_bisect(0.13) == first
