"""Warm-started incremental re-solves (:meth:`Solver.resolve`).

The contract under test is *bit-identity*: an exact-mode resolve over a
perturbed/shrunk model set must return exactly the floats a cold
:meth:`Solver.solve` over the updated model list would — same batch
kernels, same Illinois branch decisions.  Searched with hypothesis over
random model sets and perturbations, plus directed coverage of
:meth:`BatchSpeedModels.with_updates` (incremental clone vs full
restack), bracket mode, no-ops, chained resolves, error paths, and the
``partition.resolve.*`` metrics.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import BatchSpeedModels
from repro.core.partition import (
    FpmSolveState,
    partition_fpm,
    partition_fpm_with_state,
    resolve_fpm,
)
from repro.core.solver import Solver, SolverOptions
from repro.core.speed_function import SpeedFunction, SpeedSample
from repro.obs import Tracer, use_tracer

from tests.core.test_partition_properties import (
    partition_problem,
    strict_speed_function,
)


def _fn(pairs, bounded=False):
    return SpeedFunction(
        [SpeedSample(size=x, speed=s) for x, s in pairs], bounded=bounded
    )


def _models():
    return [
        _fn([(10.0, 5.0), (100.0, 4.0)]),
        _fn([(10.0, 20.0), (100.0, 12.0)]),
        _fn([(5.0, 8.0), (50.0, 10.0), (200.0, 6.0)]),
    ]


def _batch_arrays_equal(a: BatchSpeedModels, b: BatchSpeedModels) -> bool:
    """Kernel-visible state of two batches is bitwise equal."""
    ta = a.times_at(np.minimum(100.0, a.caps))
    tb = b.times_at(np.minimum(100.0, b.caps))
    return (
        a.count == b.count
        and np.array_equal(a.caps, b.caps)
        and np.array_equal(ta, tb)
    )


# ---------------------------------------------------------------------------
# BatchSpeedModels.with_updates
# ---------------------------------------------------------------------------


class TestWithUpdates:
    def test_noop_returns_self(self):
        batch = BatchSpeedModels(_models())
        assert batch.with_updates() is batch
        assert batch.with_updates({}, ()) is batch

    def test_replacement_matches_fresh_batch(self):
        models = _models()
        batch = BatchSpeedModels(models)
        new_fn = _fn([(10.0, 7.0), (100.0, 5.0)])
        updated = batch.with_updates({1: new_fn})
        fresh = BatchSpeedModels([models[0], new_fn, models[2]])
        assert _batch_arrays_equal(updated, fresh)
        for t in (0.5, 3.0, 25.0):
            assert np.array_equal(
                updated.allocations_at(t), fresh.allocations_at(t)
            )

    def test_drop_matches_fresh_batch(self):
        models = _models()
        batch = BatchSpeedModels(models)
        updated = batch.with_updates(dropped=[1])
        fresh = BatchSpeedModels([models[0], models[2]])
        assert _batch_arrays_equal(updated, fresh)
        for t in (0.5, 3.0, 25.0):
            assert np.array_equal(
                updated.allocations_at(t), fresh.allocations_at(t)
            )

    def test_replace_and_drop_together(self):
        models = _models()
        batch = BatchSpeedModels(models)
        new_fn = _fn([(1.0, 2.0), (10.0, 3.0)], bounded=True)
        updated = batch.with_updates({0: new_fn}, dropped=[2])
        fresh = BatchSpeedModels([new_fn, models[1]])
        assert _batch_arrays_equal(updated, fresh)

    def test_oversized_replacement_falls_back_to_full_rebuild(self):
        models = _models()  # padding fits <= 3 samples
        batch = BatchSpeedModels(models)
        wide = _fn([(float(x), 5.0 + x / 10.0) for x in range(1, 9)])
        updated = batch.with_updates({0: wide})
        fresh = BatchSpeedModels([wide, models[1], models[2]])
        assert _batch_arrays_equal(updated, fresh)

    def test_parent_is_not_mutated(self):
        models = _models()
        batch = BatchSpeedModels(models)
        before = batch.times_at(np.minimum(100.0, batch.caps)).copy()
        batch.with_updates({0: _fn([(10.0, 1.0)])}, dropped=[2])
        assert np.array_equal(
            batch.times_at(np.minimum(100.0, batch.caps)), before
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replacements": {5: None}},
            {"replacements": {-1: None}},
            {"dropped": [5]},
            {"dropped": [-1]},
            {"dropped": [0, 1, 2]},
        ],
    )
    def test_invalid_indices_raise(self, kwargs):
        batch = BatchSpeedModels(_models())
        reps = kwargs.get("replacements")
        if reps:
            reps = {i: _fn([(10.0, 1.0)]) for i in reps}
        with pytest.raises(ValueError):
            batch.with_updates(reps, kwargs.get("dropped", ()))

    def test_replace_and_drop_same_index_raises(self):
        batch = BatchSpeedModels(_models())
        with pytest.raises(ValueError, match="both replaced and dropped"):
            batch.with_updates({1: _fn([(10.0, 1.0)])}, dropped=[1])


# ---------------------------------------------------------------------------
# exact-mode resolve == cold solve, bitwise
# ---------------------------------------------------------------------------


def _perturb(fn: SpeedFunction, factor: float) -> SpeedFunction:
    return SpeedFunction(
        [
            SpeedSample(size=s.size, speed=s.speed * factor)
            for s in fn.samples
        ],
        bounded=fn.bounded,
    )


class TestResolveExactBitIdentity:
    @pytest.mark.property
    @given(
        problem=partition_problem(strict=True),
        factors=st.lists(
            st.floats(min_value=0.5, max_value=2.0), min_size=1, max_size=6
        ),
    )
    @settings(deadline=None)
    def test_perturbations(self, problem, factors):
        fns, total = problem
        _, state = partition_fpm_with_state(fns, total)
        changed = {
            i % len(fns): _perturb(fns[i % len(fns)], f)
            for i, f in enumerate(factors)
        }
        updated = list(fns)
        for i, fn in changed.items():
            updated[i] = fn
        warm, _ = resolve_fpm(state, replacements=changed)
        assert warm == partition_fpm(updated, total)

    @pytest.mark.property
    @given(
        fns=st.lists(
            strict_speed_function(bounded=False), min_size=2, max_size=6
        ),
        total=st.floats(min_value=1.0, max_value=5000.0),
        data=st.data(),
    )
    @settings(deadline=None)
    def test_drops(self, fns, total, data):
        _, state = partition_fpm_with_state(fns, total)
        dropped = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(fns) - 1),
                min_size=1,
                max_size=len(fns) - 1,
                unique=True,
            )
        )
        survivors = [fn for i, fn in enumerate(fns) if i not in set(dropped)]
        warm, _ = resolve_fpm(state, dropped=dropped)
        assert warm == partition_fpm(survivors, total)

    @pytest.mark.property
    @given(problem=partition_problem(strict=True))
    @settings(deadline=None)
    def test_noop_reproduces_cold_solve(self, problem):
        fns, total = problem
        cold, state = partition_fpm_with_state(fns, total)
        warm, _ = resolve_fpm(state)
        assert warm == cold

    def test_total_override(self):
        models = _models()
        _, state = partition_fpm_with_state(models, 200.0)
        warm, _ = resolve_fpm(state, total=350.0)
        assert warm == partition_fpm(models, 350.0)

    def test_chained_resolves_stay_bit_identical(self):
        models = _models()
        _, state = partition_fpm_with_state(models, 200.0)
        faster = _perturb(models[0], 1.5)
        allocs1, state = resolve_fpm(state, replacements={0: faster})
        assert allocs1 == partition_fpm(
            [faster, models[1], models[2]], 200.0
        )
        allocs2, state = resolve_fpm(state, dropped=[2])
        assert allocs2 == partition_fpm([faster, models[1]], 200.0)
        assert state.processors == 2

    def test_capacity_check_applies_to_updated_batch(self):
        small = _fn([(1.0, 1.0), (10.0, 1.0)], bounded=True)
        models = [_fn([(10.0, 5.0), (100.0, 4.0)]), small]
        _, state = partition_fpm_with_state(models, 15.0)
        with pytest.raises(ValueError):
            resolve_fpm(state, dropped=[0])


class TestResolveBracketMode:
    def test_close_to_cold_solve(self):
        models = _models()
        _, state = partition_fpm_with_state(models, 200.0)
        changed = {1: _perturb(models[1], 1.02)}
        warm, _ = resolve_fpm(state, replacements=changed, mode="bracket")
        cold = partition_fpm([models[0], changed[1], models[2]], 200.0)
        assert np.allclose(warm, cold, rtol=1e-6)
        assert math.isclose(sum(warm), 200.0, rel_tol=1e-9)

    def test_unknown_mode_raises(self):
        _, state = partition_fpm_with_state(_models(), 200.0)
        with pytest.raises(ValueError, match="resolve mode"):
            resolve_fpm(state, mode="warmish")


# ---------------------------------------------------------------------------
# Solver.resolve facade
# ---------------------------------------------------------------------------


class TestSolverResolve:
    def test_matches_cold_solve(self):
        models = _models()
        solver = Solver()
        previous = solver.solve(models, 200.0)
        assert previous.warm is not None
        faster = _perturb(models[1], 1.3)
        result = solver.resolve(previous, changed_models={1: faster})
        cold = solver.solve([models[0], faster, models[2]], 200.0)
        assert result.allocations == cold.allocations
        assert result.strategy == "fpm"
        assert result.warm is not None  # resolves chain

    def test_drop_matches_cold_solve(self):
        models = _models()
        solver = Solver()
        previous = solver.solve(models, 200.0)
        result = solver.resolve(previous, dropped=[0])
        cold = solver.solve(models[1:], 200.0)
        assert result.allocations == cold.allocations

    def test_requires_flat_fpm_strategy(self):
        models = _models()
        previous = Solver().solve(models, 200.0)
        with pytest.raises(ValueError, match="flat strategy='fpm'"):
            Solver(strategy="even").resolve(previous)
        with pytest.raises(ValueError, match="flat strategy='fpm'"):
            Solver(hierarchy=True).resolve(previous)

    def test_requires_warm_state(self):
        models = _models()
        previous = Solver(strategy="even").solve(models, 200.0)
        assert previous.warm is None
        with pytest.raises(ValueError, match="no warm state"):
            Solver().resolve(previous)

    def test_non_fpm_results_carry_no_warm_state(self):
        models = _models()
        for strategy in ("even", "geometric"):
            result = Solver(strategy=strategy).solve(models, 200.0)
            assert result.warm is None

    def test_warm_state_excluded_from_equality(self):
        models = _models()
        a = Solver().solve(models, 200.0)
        b = Solver(SolverOptions()).solve(models, 200.0)
        assert a == b  # warm states are distinct objects; compare=False

    def test_state_exposes_processors(self):
        previous = Solver().solve(_models(), 200.0)
        assert isinstance(previous.warm, FpmSolveState)
        assert previous.warm.processors == 3


# ---------------------------------------------------------------------------
# partition.resolve.* metrics
# ---------------------------------------------------------------------------


class TestResolveMetrics:
    def test_counters_and_histogram(self):
        models = _models()
        tracer = Tracer()
        with use_tracer(tracer):
            _, state = partition_fpm_with_state(models, 200.0)
            resolve_fpm(state, replacements={0: _perturb(models[0], 1.1)})
            resolve_fpm(state, dropped=[1, 2])
            resolve_fpm(state)  # no-op
            resolve_fpm(state, mode="bracket")
        counters = tracer.metrics.counters
        assert counters["partition.resolve.solves"].value == 4
        assert counters["partition.resolve.exact"].value == 3
        assert counters["partition.resolve.bracket"].value == 1
        assert counters["partition.resolve.noop"].value == 2
        assert counters["partition.resolve.rows_rebuilt"].value == 3
        hist = tracer.metrics.histograms["partition.resolve.evaluations"]
        assert hist.count == 4

    def test_resolve_span_emitted(self):
        tracer = Tracer()
        with use_tracer(tracer):
            _, state = partition_fpm_with_state(_models(), 200.0)
            resolve_fpm(state)
        names = [s.name for s in tracer.roots]
        assert "partition.resolve" in names
