"""Unit tests for two-parameter speed surfaces."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import partition_fpm
from repro.core.surface import (
    SpeedSurface,
    area_slice,
    aspect_sensitivity,
    build_surface,
)


def flat_surface(speed=100.0):
    return build_surface(
        lambda r, c: speed, [10, 100, 1000], [10, 100, 1000]
    )


def gpu_like_speed(rows, cols):
    """Area-saturating rate with a mild aspect penalty (device-model-like)."""
    area = rows * cols
    aspect = rows / cols
    rate = 900 * area / (area + 3600)
    return rate / (1 + 0.02 * math.log2(aspect) ** 2)


class TestSpeedSurface:
    def test_exact_at_grid_points(self):
        surface = build_surface(gpu_like_speed, [10, 50, 200], [10, 50, 200])
        assert surface.speed(50, 200) == pytest.approx(gpu_like_speed(50, 200))

    def test_bilinear_between_points(self):
        surface = build_surface(lambda r, c: r + c, [10, 20], [10, 20])
        assert surface.speed(15, 15) == pytest.approx(30.0)

    def test_constant_extension_outside(self):
        surface = flat_surface()
        assert surface.speed(1, 1) == 100.0
        assert surface.speed(1e6, 1e6) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SpeedSurface((10, 5), (10,), ((1.0,), (1.0,)))
        with pytest.raises(ValueError):
            SpeedSurface((10,), (10,), ((0.0,),))
        with pytest.raises(ValueError):
            SpeedSurface((10, 20), (10,), ((1.0,),))

    def test_speed_at_area_square(self):
        surface = build_surface(gpu_like_speed, [10, 60, 300], [10, 60, 300])
        # aspect 1 -> rows = cols = sqrt(area)
        assert surface.speed_at_area(3600.0) == pytest.approx(
            surface.speed(60, 60)
        )

    @given(
        rows=st.floats(min_value=1, max_value=2000),
        cols=st.floats(min_value=1, max_value=2000),
    )
    @settings(max_examples=80)
    def test_interpolation_within_envelope(self, rows, cols):
        surface = build_surface(gpu_like_speed, [10, 50, 200, 800], [10, 50, 200, 800])
        s = surface.speed(rows, cols)
        flat = [v for row in surface.speeds for v in row]
        assert min(flat) - 1e-9 <= s <= max(flat) + 1e-9


class TestAreaSlice:
    def test_slice_matches_surface(self):
        surface = build_surface(gpu_like_speed, [10, 60, 300], [10, 60, 300])
        fn = area_slice(surface, [100.0, 3600.0, 40000.0])
        assert fn.speed(3600.0) == pytest.approx(surface.speed_at_area(3600.0))

    def test_slice_feeds_partitioner(self):
        surface = build_surface(gpu_like_speed, [10, 60, 300], [10, 60, 300])
        gpu_fn = area_slice(surface, [100.0, 1000.0, 10000.0])
        alloc = partition_fpm([gpu_fn, 100.0], 5000.0)
        assert sum(alloc) == pytest.approx(5000.0)
        assert alloc[0] > alloc[1]  # the surface device is faster

    def test_aspect_changes_the_slice(self):
        surface = build_surface(gpu_like_speed, [10, 60, 300], [10, 60, 300])
        square = area_slice(surface, [3600.0], aspect=1.0)
        strip = area_slice(surface, [3600.0], aspect=4.0)
        assert strip.speed(3600.0) < square.speed(3600.0)


class TestAspectSensitivity:
    def test_flat_surface_insensitive(self):
        assert aspect_sensitivity(flat_surface(), 1000.0) == pytest.approx(0.0)

    def test_papers_near_square_assumption(self):
        """Within 2:1 aspect the speed varies by only a few percent."""
        surface = build_surface(
            gpu_like_speed, [10, 50, 200, 800], [10, 50, 200, 800]
        )
        near_square = aspect_sensitivity(
            surface, 10000.0, aspects=[0.5, 1.0, 2.0]
        )
        assert near_square < 0.05

    def test_extreme_strips_measurably_slower(self):
        surface = build_surface(
            gpu_like_speed, [10, 50, 200, 800], [10, 50, 200, 800]
        )
        wide = aspect_sensitivity(surface, 10000.0, aspects=[0.1, 1.0, 10.0])
        near = aspect_sensitivity(surface, 10000.0, aspects=[0.5, 1.0, 2.0])
        assert wide > 2 * near


class TestDeviceAspectSupport:
    def test_device_rate_penalises_strips(self, gtx680):
        square = gtx680.kernel_rate_gflops(400, aspect=1.0)
        strip = gtx680.kernel_rate_gflops(400, aspect=8.0)
        assert strip < square
        # but nearly square shapes are equivalent (Section IV assumption)
        near = gtx680.kernel_rate_gflops(400, aspect=1.5)
        assert near > 0.99 * square

    def test_surface_from_device(self, gtx680):
        """Build a real speed surface from the simulated device."""

        def speed(rows_blocks, cols_blocks):
            area = rows_blocks * cols_blocks
            return gtx680.kernel_rate_gflops(
                area, aspect=rows_blocks / cols_blocks
            )

        # the grid must resolve the rate ramp, or interpolation error
        # across areas swamps the (small) aspect effect
        axis = [5, 8, 12, 18, 27, 40, 60]
        surface = build_surface(speed, axis, axis)
        assert aspect_sensitivity(surface, 900.0, aspects=[0.5, 1, 2]) < 0.05
