"""Property-based tests of the partitioners (hypothesis).

For *random* monotone speed functions — not just the paper's presets —
every partitioner must return allocations that sum to the total, are
non-negative, respect bounded-model capacity, and (when no capacity is
binding) balance the finish times.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.partition import (
    balance_report,
    geometric_partition,
    partition_cpm,
    partition_fpm,
    partition_homogeneous,
)
from repro.core.speed_function import SpeedFunction, SpeedSample

pytestmark = pytest.mark.property


def _draw_sizes(draw, n_points: int) -> list[float]:
    return sorted(
        draw(
            st.lists(
                st.floats(min_value=1.0, max_value=500.0),
                min_size=n_points,
                max_size=n_points,
                unique=True,
            )
        )
    )


@st.composite
def speed_function(draw, bounded: bool | None = None) -> SpeedFunction:
    """A random speed function with a non-decreasing (repaired) time function.

    Adversarial: the repair may leave exact time plateaus, on which the
    equal-finish-time solution is not unique — allocation *validity* must
    still hold there, balance need not (see :func:`strict_speed_function`).
    """
    n_points = draw(st.integers(min_value=1, max_value=6))
    sizes = _draw_sizes(draw, n_points)
    speeds = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0),
            min_size=n_points,
            max_size=n_points,
        )
    )
    is_bounded = draw(st.booleans()) if bounded is None else bounded
    samples = [SpeedSample(x, s) for x, s in zip(sizes, speeds)]
    return SpeedFunction(samples, bounded=is_bounded).with_monotonic_time()


@st.composite
def strict_speed_function(draw, bounded: bool | None = None) -> SpeedFunction:
    """A random speed function whose time function strictly increases.

    Built by drawing increasing knot times with >= 5% gaps and deriving
    speeds as size/time — the partitioning theory's actual precondition,
    under which the equal-finish-time solution is unique.
    """
    n_points = draw(st.integers(min_value=1, max_value=6))
    sizes = _draw_sizes(draw, n_points)
    t = draw(st.floats(min_value=0.01, max_value=10.0))
    times = [t]
    for _ in range(n_points - 1):
        t *= draw(st.floats(min_value=1.05, max_value=3.0))
        times.append(t)
    is_bounded = draw(st.booleans()) if bounded is None else bounded
    samples = [SpeedSample(x, x / t) for x, t in zip(sizes, times)]
    fn = SpeedFunction(samples, bounded=is_bounded)
    # the repair must be the identity here — also exercises that path
    return fn.with_monotonic_time()


@st.composite
def partition_problem(draw, bounded: bool | None = None, strict: bool = False):
    """(models, total) with the total guaranteed under combined capacity."""
    fn_strategy = (
        strict_speed_function(bounded=bounded)
        if strict
        else speed_function(bounded=bounded)
    )
    fns = draw(st.lists(fn_strategy, min_size=1, max_size=6))
    cap = sum(fn.max_size for fn in fns if fn.bounded)
    if all(fn.bounded for fn in fns):
        # keep the workload clearly inside the combined capacity
        frac = draw(st.floats(min_value=0.05, max_value=0.9))
        total = frac * cap
    else:
        total = draw(st.floats(min_value=0.5, max_value=5000.0))
    return fns, total


def _check_allocation(fns, total, allocs):
    assert len(allocs) == len(fns)
    assert all(a >= 0.0 for a in allocs)
    assert math.isclose(sum(allocs), total, rel_tol=1e-6)
    for fn, a in zip(fns, allocs):
        if fn.bounded:
            assert a <= fn.max_size * (1 + 1e-9)


def _caps_binding(fns, allocs) -> bool:
    return any(
        fn.bounded and a >= fn.max_size * (1 - 1e-9)
        for fn, a in zip(fns, allocs)
    )


@given(partition_problem())
def test_fpm_allocations_are_valid(problem):
    fns, total = problem
    allocs = partition_fpm(fns, total)
    _check_allocation(fns, total, allocs)


@given(partition_problem(bounded=False, strict=True))
def test_fpm_balances_unbounded_models(problem):
    fns, total = problem
    allocs = partition_fpm(fns, total)
    assert balance_report(fns, allocs).balanced


@given(partition_problem(strict=True))
def test_fpm_balanced_unless_a_cap_binds(problem):
    fns, total = problem
    allocs = partition_fpm(fns, total)
    # a processor pinned at capacity legitimately finishes early; with no
    # cap binding the equal-finish-time solution must be balanced
    assert balance_report(fns, allocs).balanced or _caps_binding(fns, allocs)


@given(partition_problem())
def test_geometric_allocations_are_valid(problem):
    fns, total = problem
    allocs = geometric_partition(fns, total)
    _check_allocation(fns, total, allocs)


@given(partition_problem(bounded=False, strict=True))
def test_geometric_agrees_with_fpm(problem):
    fns, total = problem
    fpm = partition_fpm(fns, total)
    geo = geometric_partition(fns, total)
    # two independent derivations of the same equal-finish-time solution
    for a, b in zip(fpm, geo):
        assert math.isclose(a, b, rel_tol=1e-4, abs_tol=1e-6 * total)


@given(
    speeds=st.lists(
        st.floats(min_value=0.01, max_value=1000.0), min_size=1, max_size=12
    ),
    total=st.floats(min_value=0.5, max_value=10000.0),
)
def test_cpm_is_proportional_to_speeds(speeds, total):
    allocs = partition_cpm(speeds, total)
    assert math.isclose(sum(allocs), total, rel_tol=1e-9)
    s = sum(speeds)
    for a, v in zip(allocs, speeds):
        assert math.isclose(a, total * v / s, rel_tol=1e-12)


@given(
    n=st.integers(min_value=1, max_value=64),
    total=st.floats(min_value=1e-3, max_value=1e6),
)
def test_homogeneous_is_the_exact_equal_split(n, total):
    allocs = partition_homogeneous(n, total)
    assert allocs == [total / n] * n
