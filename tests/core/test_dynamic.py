"""Unit tests for the dynamic load balancer (paper Section II family)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic import (
    DynamicRunResult,
    SpeedBasedRebalancer,
    ThresholdRebalancer,
    run_dynamic_balancing,
)


def constant_times(speeds):
    """time_of for processors with fixed speeds (blocks/second)."""

    def time_of(i, blocks):
        return blocks / speeds[i]

    return time_of


class TestSpeedBasedRebalancer:
    def test_converges_in_one_step_for_constants(self):
        policy = SpeedBasedRebalancer()
        nxt = policy.next_distribution([50, 50], [5.0, 1.0], 100)
        # observed speeds 10 and 50 -> 1:5 split
        assert nxt == [17, 83]

    def test_keeps_total(self):
        policy = SpeedBasedRebalancer()
        nxt = policy.next_distribution([30, 30, 40], [3.0, 1.0, 2.0], 100)
        assert sum(nxt) == 100

    def test_idle_processor_reenters(self):
        policy = SpeedBasedRebalancer()
        nxt = policy.next_distribution([100, 0], [10.0, 0.0], 100)
        assert nxt[1] > 0

    def test_rejects_no_signal(self):
        with pytest.raises(ValueError):
            SpeedBasedRebalancer().next_distribution([0, 0], [0.0, 0.0], 10)


class TestThresholdRebalancer:
    def test_no_move_when_balanced(self):
        policy = ThresholdRebalancer(threshold=1.1)
        current = [50, 50]
        assert policy.next_distribution(current, [1.0, 1.05], 100) == current

    def test_moves_when_imbalanced(self):
        policy = ThresholdRebalancer(threshold=1.1)
        nxt = policy.next_distribution([50, 50], [5.0, 1.0], 100)
        assert nxt != [50, 50]

    def test_rejects_threshold_below_one(self):
        with pytest.raises(ValueError):
            ThresholdRebalancer(threshold=0.9)


class TestRunDynamicBalancing:
    def test_converges_to_proportional(self):
        res = run_dynamic_balancing(
            constant_times([10.0, 30.0]), 2, 100, iterations=10
        )
        assert res.final_distribution == (25, 75)

    def test_first_iteration_unbalanced_then_flat(self):
        res = run_dynamic_balancing(
            constant_times([10.0, 30.0]), 2, 100, iterations=10
        )
        assert res.iteration_times[0] > res.iteration_times[-1]
        # steady state: max time ~ balanced time 100/40
        assert res.iteration_times[-1] == pytest.approx(2.5, rel=0.05)

    def test_migration_accounting(self):
        res = run_dynamic_balancing(
            constant_times([10.0, 30.0]),
            2,
            100,
            iterations=5,
            migration_cost_per_block=0.1,
        )
        assert res.blocks_migrated >= 25
        assert res.migration_time == pytest.approx(0.1 * res.blocks_migrated)
        assert res.total_time == res.compute_time + res.migration_time

    def test_static_start_skips_migration(self):
        res = run_dynamic_balancing(
            constant_times([10.0, 30.0]),
            2,
            100,
            iterations=5,
            migration_cost_per_block=0.1,
            initial=[25, 75],
        )
        assert res.blocks_migrated == 0
        assert res.rebalance_count == 0

    def test_dynamic_beats_homogeneous_but_not_oracle(self):
        """The paper's qualitative claim quantified."""
        speeds = [10.0, 30.0, 60.0]
        total, iters = 300, 20
        dynamic = run_dynamic_balancing(
            constant_times(speeds), 3, total, iters, migration_cost_per_block=0.01
        )
        homogeneous = iters * (total / 3 / min(speeds))
        oracle = iters * (total / sum(speeds))
        assert dynamic.total_time < homogeneous
        assert dynamic.total_time >= oracle

    def test_initial_validation(self):
        with pytest.raises(ValueError):
            run_dynamic_balancing(
                constant_times([1.0]), 1, 10, 2, initial=[5]
            )

    @given(
        speeds=st.lists(
            st.floats(min_value=1.0, max_value=100.0), min_size=2, max_size=6
        ),
        total=st.integers(min_value=10, max_value=2000),
    )
    @settings(max_examples=50)
    def test_distribution_always_sums_to_total(self, speeds, total):
        res = run_dynamic_balancing(
            constant_times(speeds), len(speeds), total, iterations=6
        )
        for dist in res.distributions:
            assert sum(dist) == total
            assert all(d >= 0 for d in dist)

    @given(
        speeds=st.lists(
            st.floats(min_value=1.0, max_value=100.0), min_size=2, max_size=6
        )
    )
    @settings(max_examples=40)
    def test_steady_state_near_balance(self, speeds):
        res = run_dynamic_balancing(
            constant_times(speeds), len(speeds), 1000, iterations=12
        )
        final = res.final_distribution
        times = [d / s for d, s in zip(final, speeds) if d > 0]
        assert max(times) / min(times) < 1.35
