"""Unit tests for the FPM wrapper and model normalisation."""

import math

import pytest

from repro.core.fpm import FunctionalPerformanceModel, as_speed_function
from repro.core.speed_function import SpeedFunction


def make_model(**kwargs):
    fn = SpeedFunction.from_points([10, 100, 1000], [50, 100, 80])
    defaults = dict(name="dev", speed_function=fn, kernel_name="k", block_size=640)
    defaults.update(kwargs)
    return FunctionalPerformanceModel(**defaults)


class TestFpm:
    def test_passthroughs(self):
        m = make_model()
        assert m.speed(100) == 100
        assert m.time(100) == pytest.approx(1.0)
        assert m.max_size == 1000

    def test_inverse_time(self):
        m = make_model()
        t = m.time(500)
        assert m.max_size_within_time(t) == pytest.approx(500, rel=1e-6)

    def test_to_constant_is_cpm_procedure(self):
        m = make_model()
        assert m.to_constant(100) == 100.0
        assert m.to_constant(10) == 50.0

    def test_repaired_preserves_metadata(self):
        m = make_model(repetitions_total=42)
        r = m.repaired()
        assert r.name == m.name
        assert r.repetitions_total == 42
        assert r.speed_function.is_time_monotonic()

    def test_rejects_negative_repetitions(self):
        with pytest.raises(ValueError):
            make_model(repetitions_total=-1)

    def test_bounded_flag(self):
        fn = SpeedFunction.from_points([10, 20], [5, 5], bounded=True)
        m = make_model(speed_function=fn)
        assert m.bounded


class TestAsSpeedFunction:
    def test_accepts_fpm(self):
        m = make_model()
        assert as_speed_function(m) is m.speed_function

    def test_accepts_speed_function(self):
        fn = SpeedFunction.constant(5.0)
        assert as_speed_function(fn) is fn

    def test_accepts_number(self):
        fn = as_speed_function(7.5)
        assert fn.speed(123) == 7.5

    def test_rejects_nonpositive_number(self):
        with pytest.raises(ValueError):
            as_speed_function(0.0)
        with pytest.raises(ValueError):
            as_speed_function(math.inf)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_speed_function("fast")
        with pytest.raises(TypeError):
            as_speed_function(True)
