"""Unit and property tests for the column-based 2D partition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Rectangle, ascii_layout, column_based_partition


class TestRectangle:
    def test_area_and_half_perimeter(self):
        r = Rectangle(owner=0, col=0, row=0, width=3, height=4)
        assert r.area == 12
        assert r.half_perimeter == 7

    def test_intersection(self):
        a = Rectangle(0, 0, 0, 2, 2)
        b = Rectangle(1, 1, 1, 2, 2)
        c = Rectangle(2, 2, 0, 2, 2)
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Rectangle(0, -1, 0, 1, 1)


class TestColumnBasedPartition:
    def test_single_processor(self):
        p = column_based_partition([16], 4)
        assert p.rectangle_of(0).area == 16
        p.validate_tiling()

    def test_equal_processors(self):
        p = column_based_partition([8, 8], 4)
        p.validate_tiling()
        assert p.realized_allocations(2) == [8, 8]

    def test_paperlike_heterogeneous(self):
        """A GPU-dominated allocation like Table III's 40x40 row."""
        # 25 processors: 1 big GPU, 1 small GPU, 23 cores
        allocs = [1000, 210] + [17] * 22 + [16]
        total = sum(allocs)
        n = 40  # n^2 = 1600
        assert total == n * n
        p = column_based_partition(allocs, n)
        p.validate_tiling()
        realized = p.realized_allocations(len(allocs))
        # realized areas track requests within a few blocks per processor
        for want, got in zip(allocs, realized):
            assert abs(want - got) <= max(6, 0.1 * want)

    def test_zero_allocations_get_empty_rectangles(self):
        p = column_based_partition([16, 0], 4)
        assert p.rectangle_of(1).area == 0
        p.validate_tiling()

    def test_rejects_wrong_total(self):
        with pytest.raises(ValueError, match="sum"):
            column_based_partition([10], 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            column_based_partition([-1, 17], 4)

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            column_based_partition([0, 0], 4)

    def test_too_many_processors(self):
        # more active processors than grid cells is caught by the sum check
        # (every active processor holds at least one block)
        with pytest.raises(ValueError):
            column_based_partition([1] * 5, 2)

    def test_full_grid_of_unit_rectangles(self):
        p = column_based_partition([1] * 4, 2)
        p.validate_tiling()
        assert all(r.area == 1 for r in p.rectangles)

    def test_near_square_rectangles_beat_strips(self):
        """The communication objective: better than a 1D striping."""
        allocs = [25] * 4
        p = column_based_partition(allocs, 10)
        striped_hp = sum(10 + 25 // 10 for _ in allocs)  # width-10 strips
        assert p.total_half_perimeter() <= striped_hp

    def test_columns_sum_to_n(self):
        p = column_based_partition([30, 30, 20, 20], 10)
        assert sum(p.column_widths) == 10

    def test_ascii_layout_covers_grid(self):
        p = column_based_partition([40, 30, 20, 10], 10)
        art = ascii_layout(p, cell_width=1)
        lines = art.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 10 for line in lines)
        assert "?" not in art  # every block owned
        # each owner's symbol count equals its realized (grid-snapped) area
        realized = p.realized_allocations(4)
        for owner, area in enumerate(realized):
            assert art.count(str(owner)) == area

    def test_ascii_layout_single_block_grid(self):
        p = column_based_partition([1], 1)
        assert ascii_layout(p, cell_width=1) == "0"

    def test_ascii_layout_rejects_bad_width(self):
        p = column_based_partition([1], 1)
        with pytest.raises(ValueError):
            ascii_layout(p, cell_width=0)

    @given(
        n=st.integers(min_value=2, max_value=24),
        weights=st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=25
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_random_allocations_tile_exactly(self, n, weights):
        total = n * n
        raw = [w / sum(weights) * total for w in weights]
        allocs = [int(a) for a in raw]
        allocs[0] += total - sum(allocs)  # exact total
        if allocs[0] < 0:
            return
        active = sum(1 for a in allocs if a > 0)
        if active == 0 or active > total:
            return
        p = column_based_partition(allocs, n)
        p.validate_tiling()  # exact cover, no overlap, in bounds
        realized = p.realized_allocations(len(allocs))
        assert sum(realized) == total
        # processors with zero request realize zero
        for want, got in zip(allocs, realized):
            if want == 0:
                assert got == 0


class TestClusterScaleGeometry:
    """The sqrt-heuristic grouping and sweep-line validation at large p."""

    @staticmethod
    def _spread(p: int, n: int, seed: int) -> list[int]:
        import random

        rng = random.Random(seed)
        allocs = [1] * p
        for _ in range(n * n - p):
            allocs[rng.randrange(p)] += 1
        return allocs

    def test_heuristic_path_tiles_exactly(self):
        # 2000 processors is far past _EXACT_DP_LIMIT: the greedy grouping
        # must still produce a validated exact tiling with every processor
        # granted at least one block
        n = 100
        allocs = self._spread(2000, n, seed=11)
        part = column_based_partition(allocs, n)
        realized = part.realized_allocations(len(allocs))
        assert sum(realized) == n * n
        assert min(realized) >= 1
        assert sum(part.column_widths) == n

    def test_heuristic_columns_are_roughly_square(self):
        # near-uniform areas: expect ~sqrt(p) columns, not 1 or p
        import math

        n = 64
        p = 1024
        allocs = self._spread(p, n, seed=3)
        part = column_based_partition(allocs, n)
        k = len(part.column_widths)
        assert math.sqrt(p) / 2 <= k <= math.sqrt(p) * 2

    def test_heuristic_matches_dp_contract_on_small_grids(self):
        # both paths must satisfy the same feasibility contract; compare
        # realized totals on an input the DP also accepts
        from repro.core import geometry

        n = 30
        allocs = self._spread(200, n, seed=7)
        part = column_based_partition(allocs, n)
        assert all(g >= 1 for g in part.column_widths)
        groups = geometry._column_groups_heuristic(
            [a / (n * n) for a in sorted(allocs, reverse=True)],
            max_group=n,
            k_limit=n,
        )
        assert sum(groups) == len(allocs)
        assert all(1 <= g <= n for g in groups)

    def test_sweep_detects_overlap_with_exact_area(self):
        from repro.core.geometry import ColumnPartition

        bad = ColumnPartition(
            n=2,
            rectangles=(
                Rectangle(owner=0, col=0, row=0, width=1, height=2),
                Rectangle(owner=1, col=0, row=1, width=2, height=1),
            ),
            column_widths=(1, 1),
        )
        with pytest.raises(ValueError, match="overlap"):
            bad.validate_tiling()

    def test_rectangle_of_is_indexed_and_first_match_wins(self):
        from repro.core.geometry import ColumnPartition

        part = ColumnPartition(
            n=2,
            rectangles=(
                Rectangle(owner=0, col=0, row=0, width=1, height=2),
                Rectangle(owner=0, col=1, row=0, width=1, height=1),
                Rectangle(owner=1, col=1, row=1, width=1, height=1),
            ),
            column_widths=(1, 1),
        )
        assert part.rectangle_of(0).height == 2  # first declared wins
        assert part.rectangle_of(1).row == 1
        with pytest.raises(KeyError):
            part.rectangle_of(9)
