"""Unit and property tests for the partitioning algorithms."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cpm import ConstantPerformanceModel
from repro.core.partition import (
    balance_report,
    geometric_partition,
    partition_cpm,
    partition_fpm,
    partition_homogeneous,
)
from repro.core.speed_function import SpeedFunction


def constant(speed):
    return SpeedFunction.constant(speed)


def ramped(peak, half):
    """A realistic saturating speed function."""
    sizes = [half / 4, half, 2 * half, 8 * half, 32 * half]
    speeds = [peak * s / (s + half) for s in sizes]
    return SpeedFunction.from_points(sizes, speeds)


class TestPartitionFpmBasics:
    def test_equal_models_equal_split(self):
        models = [constant(10.0)] * 4
        alloc = partition_fpm(models, 100.0)
        assert alloc == pytest.approx([25.0] * 4)

    def test_proportional_for_constants(self):
        alloc = partition_fpm([constant(10), constant(30)], 100.0)
        assert alloc == pytest.approx([25.0, 75.0], rel=1e-6)

    def test_sum_invariant(self):
        models = [ramped(100, 50), ramped(900, 60), constant(20)]
        alloc = partition_fpm(models, 1234.0)
        assert sum(alloc) == pytest.approx(1234.0, rel=1e-6)

    def test_equal_time_property(self):
        models = [ramped(100, 50), ramped(900, 60), ramped(250, 40)]
        alloc = partition_fpm(models, 3000.0)
        report = balance_report(models, alloc)
        assert report.imbalance < 1.001

    def test_single_model_gets_everything(self):
        alloc = partition_fpm([ramped(100, 10)], 500.0)
        assert alloc == pytest.approx([500.0])

    def test_rejects_nonpositive_total(self):
        with pytest.raises(ValueError):
            partition_fpm([constant(1)], 0.0)

    def test_bounded_capacity_respected(self):
        bounded = SpeedFunction.from_points([1, 100], [50, 50], bounded=True)
        models = [bounded, constant(10.0)]
        alloc = partition_fpm(models, 500.0)
        assert alloc[0] <= 100.0 + 1e-9
        assert sum(alloc) == pytest.approx(500.0)

    def test_infeasible_capacity_raises(self):
        bounded = SpeedFunction.from_points([1, 10], [5, 5], bounded=True)
        with pytest.raises(ValueError, match="capacity"):
            partition_fpm([bounded, bounded], 100.0)

    def test_accepts_raw_constants(self):
        alloc = partition_fpm([10.0, 30.0], 40.0)
        assert alloc == pytest.approx([10.0, 30.0], rel=1e-6)


class TestGeometricAgreement:
    def test_agrees_with_bisection_constants(self):
        models = [constant(10), constant(25), constant(65)]
        a = partition_fpm(models, 500.0)
        b = geometric_partition(models, 500.0)
        assert a == pytest.approx(b, rel=1e-4)

    def test_agrees_with_bisection_curved(self):
        models = [ramped(100, 50), ramped(900, 60), ramped(250, 40)]
        a = partition_fpm(models, 2500.0)
        b = geometric_partition(models, 2500.0)
        assert a == pytest.approx(b, rel=1e-3)

    def test_agrees_with_bounded_models(self):
        bounded = SpeedFunction.from_points([1, 100], [50, 50], bounded=True)
        models = [bounded, constant(10.0)]
        a = partition_fpm(models, 400.0)
        b = geometric_partition(models, 400.0)
        assert a == pytest.approx(b, rel=1e-3)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=2000.0),
                st.floats(min_value=1.0, max_value=300.0),
            ),
            min_size=2,
            max_size=6,
        ),
        st.floats(min_value=10.0, max_value=1e5),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_agreement(self, params, total):
        models = [ramped(peak, half) for peak, half in params]
        a = partition_fpm(models, total)
        b = geometric_partition(models, total)
        for x, y in zip(a, b):
            assert x == pytest.approx(y, rel=1e-3, abs=total * 1e-6)


class TestPartitionCpm:
    def test_proportionality(self):
        cpms = [
            ConstantPerformanceModel("a", 10.0),
            ConstantPerformanceModel("b", 40.0),
        ]
        alloc = partition_cpm(cpms, 100.0)
        assert alloc == pytest.approx([20.0, 80.0])

    def test_accepts_numbers(self):
        assert partition_cpm([1.0, 1.0], 10.0) == pytest.approx([5.0, 5.0])

    def test_rejects_speed_functions(self):
        with pytest.raises(TypeError):
            partition_cpm([constant(5.0)], 10.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            partition_cpm([], 10.0)


class TestPartitionHomogeneous:
    def test_even_split(self):
        assert partition_homogeneous(4, 100.0) == pytest.approx([25.0] * 4)

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            partition_homogeneous(0, 10.0)


class TestBalanceReport:
    def test_perfect_balance(self):
        models = [constant(10), constant(10)]
        report = balance_report(models, [5.0, 5.0])
        assert report.imbalance == pytest.approx(1.0)
        assert report.balanced

    def test_detects_imbalance(self):
        models = [constant(10), constant(10)]
        report = balance_report(models, [9.0, 1.0])
        assert report.imbalance == pytest.approx(9.0)
        assert not report.balanced

    def test_zero_allocations_ignored(self):
        models = [constant(10), constant(10)]
        report = balance_report(models, [10.0, 0.0])
        assert report.imbalance == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            balance_report([constant(1)], [1.0, 2.0])


class TestProperties:
    @given(
        st.lists(st.floats(min_value=0.5, max_value=500.0), min_size=1, max_size=8),
        st.floats(min_value=1.0, max_value=1e6),
    )
    @settings(max_examples=80)
    def test_constants_reduce_to_proportional(self, speeds, total):
        models = [constant(s) for s in speeds]
        alloc = partition_fpm(models, total)
        expected = [total * s / sum(speeds) for s in speeds]
        for a, e in zip(alloc, expected):
            assert a == pytest.approx(e, rel=1e-5, abs=total * 1e-7)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=2000.0),
                st.floats(min_value=1.0, max_value=300.0),
            ),
            min_size=1,
            max_size=7,
        ),
        st.floats(min_value=1.0, max_value=1e5),
    )
    @settings(max_examples=80, deadline=None)
    def test_sum_and_balance_invariants(self, params, total):
        models = [ramped(peak, half) for peak, half in params]
        alloc = partition_fpm(models, total)
        assert sum(alloc) == pytest.approx(total, rel=1e-5)
        assert all(a >= -1e-9 for a in alloc)
        report = balance_report(models, alloc)
        assert report.imbalance < 1.01

    @given(
        st.lists(st.floats(min_value=0.5, max_value=500.0), min_size=2, max_size=6),
        st.floats(min_value=10.0, max_value=1e4),
    )
    @settings(max_examples=50)
    def test_faster_processor_gets_no_less(self, speeds, total):
        models = [constant(s) for s in speeds]
        alloc = partition_fpm(models, total)
        order_speed = sorted(range(len(speeds)), key=lambda i: speeds[i])
        order_alloc = sorted(range(len(speeds)), key=lambda i: alloc[i])
        # allocation order matches speed order (ties may permute freely)
        for i, j in zip(order_speed, order_alloc):
            assert speeds[i] <= speeds[j] + 1e-9 or alloc[i] == pytest.approx(
                alloc[j], rel=1e-6
            )
