"""Bit-identity of the vectorized FPM solver against its scalar oracle.

The cluster-scale solver (:func:`repro.core.partition.partition_fpm`)
evaluates every model's allocation in one NumPy sweep per Illinois
iteration; :func:`~repro.core.partition.partition_fpm_scalar` walks the
same segment tables one model at a time through the shared driver.  The
contract is *bit-identity* — not closeness — because both paths take the
same branch decisions on the same floats.  Searched with hypothesis over
random model sets, and pinned at 2/100/10000 devices with a fixed seed
so a kernel change that shifts any bit fails loudly.
"""

from __future__ import annotations

import hashlib
import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hierarchical import hierarchical_partition
from repro.core.partition import (
    partition_fpm,
    partition_fpm_many,
    partition_fpm_scalar,
)
from repro.core.speed_function import SpeedFunction, SpeedSample

from tests.core.test_partition_properties import (
    partition_problem,
    strict_speed_function,
)


# ---------------------------------------------------------------------------
# hypothesis: identities the vectorization must preserve
# ---------------------------------------------------------------------------


@pytest.mark.property
@given(partition_problem())
def test_batch_equals_scalar_bitwise(problem):
    """Vectorized and per-model solves agree on every bit."""
    fns, total = problem
    assert partition_fpm(fns, total) == partition_fpm_scalar(fns, total)


@pytest.mark.property
@given(
    partition_problem(),
    st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=4),
)
def test_many_rows_equal_single_solves_bitwise(problem, fractions):
    """Each multi-target row is exactly the corresponding single solve."""
    fns, total = problem
    totals = [f * total for f in fractions]
    rows = partition_fpm_many(fns, totals)
    for t, row in zip(totals, rows):
        assert list(row) == partition_fpm(fns, t)


@pytest.mark.property
@given(
    partition_problem(),
    st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=4),
)
def test_many_rows_are_valid_allocations(problem, fractions):
    fns, totals = problem[0], [f * problem[1] for f in fractions]
    for t, row in zip(totals, partition_fpm_many(fns, totals)):
        assert all(a >= 0.0 for a in row)
        assert math.isclose(sum(row), t, rel_tol=1e-6)
        for fn, a in zip(fns, row):
            if fn.bounded:
                assert a <= fn.max_size * (1 + 1e-9)


@pytest.mark.property
@given(
    units=st.lists(
        strict_speed_function(bounded=False), min_size=1, max_size=4
    ),
    nodes=st.integers(min_value=1, max_value=4),
    per_node=st.integers(min_value=10, max_value=400),
)
def test_hierarchy_fanout_matches_flat_solve_on_homogeneous_nodes(
    units, nodes, per_node
):
    """On identical nodes the two-level solve collapses to the flat one.

    Every node must receive exactly ``total / nodes`` blocks, every node's
    fan-out must be the *same* tuple (the dedup guarantees one inner
    solve), and the flat equal-finish-time solve over all units must tile
    into per-node copies of the single-node solution.
    """
    total = per_node * nodes
    tree = hierarchical_partition([list(units)] * nodes, total)
    assert tree.node_allocations == (per_node,) * nodes
    assert len(set(tree.unit_allocations)) == 1
    assert sum(tree.flat) == total

    flat = partition_fpm([*units] * nodes, float(total))
    one_node = partition_fpm(units, float(per_node))
    for i in range(nodes):
        for j, expected in enumerate(one_node):
            assert math.isclose(
                flat[i * len(units) + j], expected, rel_tol=1e-9, abs_tol=1e-9
            )


# ---------------------------------------------------------------------------
# pinned regression: fixed seed, fixed digests
# ---------------------------------------------------------------------------


def _pinned_models(count: int, seed: int) -> list[SpeedFunction]:
    """Deterministic heterogeneous model zoo (mixed bounded/unbounded)."""
    rng = random.Random(seed)
    models = []
    for _ in range(count):
        points = rng.randint(1, 6)
        sizes = sorted({rng.uniform(1.0, 500.0) for _ in range(points)})
        t = rng.uniform(0.01, 10.0)
        samples = []
        for x in sizes:
            samples.append(SpeedSample(size=x, speed=x / t))
            t *= rng.uniform(1.05, 3.0)
        models.append(SpeedFunction(samples, bounded=rng.random() < 0.4))
    return models


def _pinned_total(models: list[SpeedFunction]) -> float:
    if all(fn.bounded for fn in models):
        return 0.5 * sum(fn.max_size for fn in models)
    return 37.5 * len(models)


def _digest(allocations) -> str:
    payload = " ".join(float(a).hex() for a in allocations)
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]


#: sha256 (truncated) over the hex bit patterns of the allocations at
#: seed 20260808 — any change here is a behaviour change of the solver
#: and must be called out in the commit that causes it.
PINNED = {
    2: "81812e6d7311b64c",
    100: "e6dcb1162d2670a7",
    10000: "0621aff4eb3b64d4",
}


@pytest.mark.parametrize("count", sorted(PINNED))
def test_pinned_allocations_are_stable(count):
    models = _pinned_models(count, seed=20260808)
    total = _pinned_total(models)
    allocs = partition_fpm(models, total)
    assert math.isclose(sum(allocs), total, rel_tol=1e-9)
    assert _digest(allocs) == PINNED[count]
    if count <= 100:  # the scalar oracle is O(devices) per iteration
        assert allocs == partition_fpm_scalar(models, total)
