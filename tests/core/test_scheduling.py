"""Unit tests for the task-queue scheduler simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduling import (
    simulate_work_stealing,
    static_reference_makespan,
)


class FakeKernel:
    """A kernel with linear time plus size-dependent efficiency ramp."""

    def __init__(self, rate, half=0.0):
        self.rate = rate
        self.half = half

    def run_time(self, blocks, busy_cpu_cores=0):
        if blocks == 0:
            return 0.0
        eff = blocks / (blocks + self.half) if self.half else 1.0
        return blocks / (self.rate * eff)


class TestSimulateWorkStealing:
    def test_all_blocks_processed(self):
        result = simulate_work_stealing(
            [FakeKernel(10), FakeKernel(30)], 100, chunk_blocks=7
        )
        assert sum(result.blocks_per_device) == 100

    def test_faster_device_takes_more(self):
        result = simulate_work_stealing(
            [FakeKernel(10), FakeKernel(30)], 300, chunk_blocks=5
        )
        assert result.blocks_per_device[1] > result.blocks_per_device[0]

    def test_fine_chunks_approach_proportional(self):
        result = simulate_work_stealing(
            [FakeKernel(10), FakeKernel(30)], 400, chunk_blocks=1,
            per_task_overhead=0.0,
        )
        assert result.blocks_per_device[1] == pytest.approx(300, abs=5)

    def test_overhead_accumulates(self):
        fine = simulate_work_stealing(
            [FakeKernel(10)], 100, chunk_blocks=1, per_task_overhead=0.01
        )
        coarse = simulate_work_stealing(
            [FakeKernel(10)], 100, chunk_blocks=50, per_task_overhead=0.01
        )
        assert fine.scheduling_overhead > coarse.scheduling_overhead
        assert fine.makespan > coarse.makespan

    def test_ramped_device_starved_by_small_chunks(self):
        """A GPU-like kernel at chunk 1 runs far below its rate."""
        gpu = FakeKernel(100, half=50)
        cpu = FakeKernel(10)
        fine = simulate_work_stealing([gpu, cpu], 500, 1, per_task_overhead=0)
        coarse = simulate_work_stealing([gpu, cpu], 500, 100, per_task_overhead=0)
        assert fine.blocks_per_device[0] < coarse.blocks_per_device[0]

    def test_single_device(self):
        result = simulate_work_stealing([FakeKernel(10)], 50, 10)
        assert result.blocks_per_device == (50,)
        assert result.tasks_per_device == (5,)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            simulate_work_stealing([], 10, 1)

    @given(
        rates=st.lists(
            st.floats(min_value=1.0, max_value=100.0), min_size=1, max_size=5
        ),
        total=st.integers(min_value=1, max_value=500),
        chunk=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60)
    def test_conservation_and_bounds(self, rates, total, chunk):
        kernels = [FakeKernel(r) for r in rates]
        result = simulate_work_stealing(
            kernels, total, chunk, per_task_overhead=1e-4
        )
        assert sum(result.blocks_per_device) == total
        # makespan at least the perfectly parallel lower bound
        lower = total / sum(rates)
        assert result.makespan >= lower - 1e-9


class TestStaticReference:
    def test_value(self):
        kernels = [FakeKernel(10), FakeKernel(30)]
        assert static_reference_makespan(kernels, [10, 30]) == pytest.approx(1.0)

    def test_zero_allocation_skipped(self):
        assert static_reference_makespan([FakeKernel(10)], [0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            static_reference_makespan([FakeKernel(1)], [1, 2])
