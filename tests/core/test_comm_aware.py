"""Unit tests for communication-aware partition refinement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.comm_aware import (
    comm_aware_refinement,
    comm_aware_refinement_scalar,
    predicted_iteration_time,
)
from repro.core.integer import round_partition
from repro.core.partition import partition_fpm
from repro.core.speed_function import SpeedFunction


def constant(speed):
    return SpeedFunction.constant(speed)


class TestPredictedIterationTime:
    def test_zero_beta_is_compute_makespan(self):
        models = [constant(10), constant(10)]
        t = predicted_iteration_time(models, [50, 50], beta=0.0)
        assert t == pytest.approx(5.0)

    def test_comm_term_uses_largest_perimeter(self):
        models = [constant(10), constant(10)]
        t = predicted_iteration_time(models, [100, 25], beta=1.0)
        assert t == pytest.approx(10.0 + 2 * 10.0)

    def test_empty_allocation(self):
        assert predicted_iteration_time([constant(1)], [0], 1.0) == 0.0

    def test_rejects_negative_beta(self):
        with pytest.raises(ValueError):
            predicted_iteration_time([constant(1)], [1], -1.0)


class TestCommAwareRefinement:
    def test_zero_beta_preserves_balanced_allocation(self):
        models = [constant(10), constant(30)]
        start = [25, 75]
        assert comm_aware_refinement(models, start, beta=0.0) == start

    def test_shrinks_dominant_rectangle_under_heavy_comm(self):
        """Expensive broadcasts pull the optimum from proportional
        (compute-balanced) toward equal (perimeter-balanced) shares."""
        models = [constant(100), constant(50)]
        balanced = round_partition(models, partition_fpm(models, 300.0), 300)
        assert balanced == [200, 100]
        refined = comm_aware_refinement(models, list(balanced), beta=0.5)
        assert refined[0] < balanced[0]
        assert predicted_iteration_time(
            models, refined, 0.5
        ) < predicted_iteration_time(models, balanced, 0.5)

    def test_extreme_speed_gap_leaves_balance_alone(self):
        """When the receiver is far slower, no move can pay off."""
        models = [constant(100), constant(10)]
        balanced = round_partition(models, partition_fpm(models, 1100.0), 1100)
        refined = comm_aware_refinement(models, list(balanced), beta=0.05)
        assert refined == balanced

    def test_never_worse_than_start(self):
        models = [constant(50), constant(20), constant(10)]
        start = [700, 200, 100]
        refined = comm_aware_refinement(models, start, beta=0.01)
        assert predicted_iteration_time(models, refined, 0.01) <= (
            predicted_iteration_time(models, start, 0.01) + 1e-12
        )

    def test_sum_preserved(self):
        models = [constant(50), constant(20)]
        refined = comm_aware_refinement(models, [600, 400], beta=0.02)
        assert sum(refined) == 1000

    def test_respects_caps(self):
        bounded = SpeedFunction.from_points([1, 50], [1000, 1000], bounded=True)
        models = [constant(1.0), bounded]
        refined = comm_aware_refinement(models, [100, 0], beta=0.5)
        assert refined[1] <= 50

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            comm_aware_refinement([constant(1)], [1, 2], beta=0.0)

    @given(
        speeds=st.lists(
            st.floats(min_value=1.0, max_value=200.0), min_size=2, max_size=5
        ),
        total=st.integers(min_value=20, max_value=2000),
        beta=st.floats(min_value=0.0, max_value=0.1),
    )
    @settings(max_examples=50, deadline=None)
    def test_properties(self, speeds, total, beta):
        models = [constant(s) for s in speeds]
        start = round_partition(models, partition_fpm(models, float(total)), total)
        refined = comm_aware_refinement(models, list(start), beta=beta)
        assert sum(refined) == total
        assert all(a >= 0 for a in refined)
        assert predicted_iteration_time(models, refined, beta) <= (
            predicted_iteration_time(models, start, beta) + 1e-9
        )


class TestScalarOracleEquivalence:
    """The vectorised hill-climb must match the quadratic oracle exactly."""

    def test_bounded_and_zero_allocations(self):
        bounded = SpeedFunction.from_points([1, 50], [1000, 1000], bounded=True)
        models = [constant(1.0), bounded, constant(5.0)]
        start = [100, 0, 30]
        assert comm_aware_refinement(
            models, start, beta=0.5
        ) == comm_aware_refinement_scalar(models, start, beta=0.5)

    def test_single_unit(self):
        models = [constant(10.0)]
        assert comm_aware_refinement(
            models, [40], beta=0.3
        ) == comm_aware_refinement_scalar(models, [40], beta=0.3)

    @given(
        speeds=st.lists(
            st.floats(min_value=1.0, max_value=200.0), min_size=2, max_size=6
        ),
        total=st.integers(min_value=20, max_value=2000),
        beta=st.floats(min_value=0.0, max_value=0.2),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_on_constants(self, speeds, total, beta):
        models = [constant(s) for s in speeds]
        start = round_partition(models, partition_fpm(models, float(total)), total)
        assert comm_aware_refinement(
            models, list(start), beta=beta
        ) == comm_aware_refinement_scalar(models, list(start), beta=beta)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        beta=st.floats(min_value=0.0, max_value=0.1),
    )
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_on_piecewise_models(self, seed, beta):
        import numpy as np

        rng = np.random.default_rng(seed)
        p = int(rng.integers(2, 7))
        models = []
        for _ in range(p):
            peak = float(rng.uniform(5.0, 200.0))
            half = float(rng.uniform(5.0, 80.0))
            sizes = [half / 2, half, 4 * half, 16 * half]
            models.append(
                SpeedFunction.from_points(
                    sizes, [peak * s / (s + half) for s in sizes]
                )
            )
        total = int(rng.integers(20, 2000))
        start = round_partition(
            models, partition_fpm(models, float(total)), total
        )
        assert comm_aware_refinement(
            models, list(start), beta=beta
        ) == comm_aware_refinement_scalar(models, list(start), beta=beta)
