"""Unit tests for communication-volume accounting."""

import pytest

from repro.core.comm_volume import (
    one_d_volume_blocks,
    per_iteration_volume_blocks,
    per_iteration_volume_bytes,
    total_volume_bytes,
    volume_improvement,
)
from repro.core.geometry import column_based_partition


@pytest.fixture()
def square_partition():
    return column_based_partition([25, 25, 25, 25], 10)


class TestVolumes:
    def test_per_iteration_is_half_perimeter_sum(self, square_partition):
        assert per_iteration_volume_blocks(square_partition) == float(
            square_partition.total_half_perimeter()
        )

    def test_bytes_scaling(self, square_partition):
        blocks = per_iteration_volume_blocks(square_partition)
        assert per_iteration_volume_bytes(
            square_partition, 640
        ) == pytest.approx(blocks * 640 * 640 * 4)

    def test_total_is_n_iterations(self, square_partition):
        per_iter = per_iteration_volume_bytes(square_partition, 640)
        assert total_volume_bytes(square_partition, 640) == pytest.approx(
            10 * per_iter
        )

    def test_one_d_volume(self):
        # 4 strips of 10x2.5 blocks
        v = one_d_volume_blocks([25, 25, 25, 25], 10)
        assert v == pytest.approx(4 * (10 + 2.5))

    def test_one_d_rejects_bad_total(self):
        with pytest.raises(ValueError):
            one_d_volume_blocks([10, 10], 10)

    def test_column_based_beats_striping(self, square_partition):
        assert volume_improvement(square_partition, [25, 25, 25, 25]) >= 1.0

    def test_improvement_grows_with_processor_count(self):
        n = 24
        p16 = column_based_partition([n * n // 16] * 16, n)
        imp16 = volume_improvement(p16, [n * n // 16] * 16)
        p4 = column_based_partition([n * n // 4] * 4, n)
        imp4 = volume_improvement(p4, [n * n // 4] * 4)
        assert imp16 > imp4
