"""Unit tests for constant performance models."""

import math

import pytest

from repro.core.cpm import (
    ConstantPerformanceModel,
    cpm_from_fpm,
    cpms_from_even_split,
)
from repro.core.fpm import FunctionalPerformanceModel
from repro.core.speed_function import SpeedFunction


def gpu_like_model():
    """Fast while small (resident), slow when large — like the GTX680."""
    fn = SpeedFunction.from_points([100, 1000, 1200, 2000], [900, 950, 500, 450])
    return FunctionalPerformanceModel(name="gpu", speed_function=fn)


class TestCpm:
    def test_time(self):
        cpm = ConstantPerformanceModel("a", 10.0)
        assert cpm.time(50) == pytest.approx(5.0)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError):
            ConstantPerformanceModel("a", 0.0)

    def test_as_speed_function(self):
        cpm = ConstantPerformanceModel("a", 10.0)
        assert cpm.as_speed_function().speed(1e6) == 10.0

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            ConstantPerformanceModel("a", 1.0).time(-1)


class TestDerivation:
    def test_cpm_from_fpm_evaluates_at_calibration(self):
        cpm = cpm_from_fpm(gpu_like_model(), 1000)
        assert cpm.speed == 950.0
        assert cpm.calibration_size == 1000

    def test_cpm_overestimates_gpu_at_scale(self):
        """The paper's CPM failure mode: in-memory calibration."""
        model = gpu_like_model()
        cpm = cpm_from_fpm(model, 500)
        assert cpm.speed > model.speed(2000)

    def test_even_split(self):
        models = [gpu_like_model(), gpu_like_model()]
        cpms = cpms_from_even_split(models, 2000)
        assert all(c.calibration_size == 1000 for c in cpms)

    def test_even_split_rejects_empty(self):
        with pytest.raises(ValueError):
            cpms_from_even_split([], 100)

    def test_rejects_bad_calibration(self):
        with pytest.raises(ValueError):
            cpm_from_fpm(gpu_like_model(), 0.0)
