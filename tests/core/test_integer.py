"""Unit and property tests for integer block allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.integer import makespan, refine_integer_partition, round_partition
from repro.core.partition import partition_fpm
from repro.core.speed_function import SpeedFunction


def constant(speed):
    return SpeedFunction.constant(speed)


def ramped(peak, half):
    sizes = [half / 4, half, 2 * half, 8 * half, 32 * half]
    speeds = [peak * s / (s + half) for s in sizes]
    return SpeedFunction.from_points(sizes, speeds)


class TestRoundPartition:
    def test_exact_sum(self):
        models = [constant(10), constant(20), constant(30)]
        alloc = round_partition(models, [16.6, 33.3, 50.1], 100)
        assert sum(alloc) == 100
        assert all(isinstance(a, int) for a in alloc)

    def test_within_one_of_continuous(self):
        models = [constant(10), constant(20), constant(30)]
        continuous = partition_fpm(models, 100.0)
        alloc = round_partition(models, continuous, 100)
        for a, c in zip(alloc, continuous):
            assert abs(a - c) <= 1.0 + 1e-9

    def test_balanced_outcome(self):
        models = [ramped(900, 60), ramped(100, 50), ramped(250, 40)]
        continuous = partition_fpm(models, 3000.0)
        alloc = round_partition(models, continuous, 3000)
        times = [m.time(a) for m, a in zip(models, alloc)]
        assert max(times) / min(times) < 1.02

    def test_handles_overshoot(self):
        models = [constant(10), constant(10)]
        alloc = round_partition(models, [60.0, 60.0], 100)
        assert sum(alloc) == 100

    def test_respects_bounded_caps(self):
        bounded = SpeedFunction.from_points([1, 50], [100, 100], bounded=True)
        models = [bounded, constant(1.0)]
        alloc = round_partition(models, [50.0, 50.0], 100)
        assert alloc[0] <= 50
        assert sum(alloc) == 100

    def test_infeasible_capacity(self):
        bounded = SpeedFunction.from_points([1, 5], [10, 10], bounded=True)
        with pytest.raises(ValueError, match="capacity"):
            round_partition([bounded], [5.0], 10)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            round_partition([constant(1)], [1.0, 2.0], 3)

    @given(
        st.lists(st.floats(min_value=0.5, max_value=200), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=5000),
    )
    @settings(max_examples=80)
    def test_sum_property(self, speeds, total):
        models = [constant(s) for s in speeds]
        continuous = partition_fpm(models, float(total))
        alloc = round_partition(models, continuous, total)
        assert sum(alloc) == total
        assert all(a >= 0 for a in alloc)


class TestRefine:
    def test_improves_bad_allocation(self):
        models = [constant(10), constant(10)]
        refined = refine_integer_partition(models, [90, 10])
        assert makespan(models, refined) < makespan(models, [90, 10])
        assert sum(refined) == 100

    def test_keeps_balanced_allocation(self):
        models = [constant(10), constant(10)]
        assert refine_integer_partition(models, [50, 50]) == [50, 50]

    def test_sum_preserved(self):
        models = [ramped(900, 60), constant(100), constant(30)]
        refined = refine_integer_partition(models, [10, 10, 1000])
        assert sum(refined) == 1020

    def test_respects_caps(self):
        bounded = SpeedFunction.from_points([1, 20], [1000, 1000], bounded=True)
        models = [bounded, constant(1.0)]
        refined = refine_integer_partition(models, [0, 100])
        assert refined[0] <= 20

    @given(
        st.lists(st.floats(min_value=0.5, max_value=200), min_size=2, max_size=6),
        st.lists(st.integers(min_value=0, max_value=500), min_size=2, max_size=6),
    )
    @settings(max_examples=60)
    def test_never_worse(self, speeds, alloc):
        k = min(len(speeds), len(alloc))
        speeds, alloc = speeds[:k], alloc[:k]
        models = [constant(s) for s in speeds]
        refined = refine_integer_partition(models, alloc)
        assert sum(refined) == sum(alloc)
        assert makespan(models, refined) <= makespan(models, alloc) + 1e-9


class TestMakespan:
    def test_zero_for_empty(self):
        assert makespan([constant(1)], [0]) == 0.0

    def test_value(self):
        assert makespan([constant(10), constant(5)], [10, 10]) == pytest.approx(2.0)
