"""Unit tests for partition diagnostics."""

import math

import pytest

from repro.core.diagnostics import diagnose_partition
from repro.core.fpm import FunctionalPerformanceModel
from repro.core.speed_function import SpeedFunction, SpeedSample


def model_with_precision(precisions):
    samples = [
        SpeedSample(size=10.0 * (i + 1), speed=100.0, rel_precision=p)
        for i, p in enumerate(precisions)
    ]
    return FunctionalPerformanceModel(name="m", speed_function=SpeedFunction(samples))


class TestDiagnosePartition:
    def test_in_range_flat_model_is_trustworthy(self):
        m = model_with_precision([0.01, 0.01, 0.01])
        diag = diagnose_partition([m, m], [15.0, 25.0])
        assert diag.trustworthy
        assert diag.extrapolating == []
        assert diag.steep_operating_points == []

    def test_extrapolation_flagged(self):
        m = model_with_precision([0.01, 0.01])
        diag = diagnose_partition([m], [500.0])
        assert diag.extrapolating == [0]
        assert not diag.trustworthy

    def test_steep_segment_flagged(self):
        cliff = SpeedFunction.from_points([100, 120, 4000], [900, 400, 380])
        diag = diagnose_partition([cliff], [110.0])
        assert diag.steep_operating_points == [0]

    def test_gentle_segment_not_flagged(self):
        gentle = SpeedFunction.from_points([100, 200, 400], [100, 105, 108])
        diag = diagnose_partition([gentle], [250.0])
        assert diag.steep_operating_points == []

    def test_imbalance_band_from_precision(self):
        m = model_with_precision([0.04, 0.04])
        diag = diagnose_partition([m], [15.0])
        assert diag.estimated_imbalance_band == pytest.approx(0.08)

    def test_sloppy_measurements_not_trustworthy(self):
        m = model_with_precision([0.08, 0.08])
        diag = diagnose_partition([m], [15.0])
        assert diag.estimated_imbalance_band == pytest.approx(0.16)
        assert not diag.trustworthy

    def test_zero_allocation_harmless(self):
        m = model_with_precision([0.01])
        diag = diagnose_partition([m], [0.0])
        assert diag.entries[0].local_slope == 0.0
        assert not diag.entries[0].extrapolated

    def test_bare_speed_function_has_nan_precision(self):
        fn = SpeedFunction.constant(50.0)
        diag = diagnose_partition([fn], [10.0])
        assert math.isnan(diag.entries[0].rel_precision)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            diagnose_partition([SpeedFunction.constant(1.0)], [1.0, 2.0])

    def test_real_fpm_partition_diagnosis(self, quiet_bench):
        """End to end: diagnose a real plan from real models."""
        from repro.core.partition import partition_fpm
        from repro.measurement.fpm_builder import FpmBuilder, SizeGrid

        builder = FpmBuilder(quiet_bench)
        models = [
            builder.build(
                quiet_bench.gpu_kernel(1, 3), SizeGrid.geometric(8, 4000, 10)
            ),
            builder.build(
                quiet_bench.socket_kernel(2, 6), SizeGrid.geometric(8, 2000, 10)
            ),
        ]
        alloc = partition_fpm(models, 3000.0)
        diag = diagnose_partition(models, alloc)
        assert diag.extrapolating == []  # grids covered the solution
        assert diag.estimated_imbalance_band < 0.2
