"""The unified :class:`repro.core.solver.Solver` facade.

Options validation, strategy dispatch against the underlying algorithm
functions, hierarchical mode, immutability, and the deprecation shim
that keeps ``repro.api.partition`` alive (warning exactly once).
"""

from __future__ import annotations

import math
import warnings

import pytest

from repro.core.cpm import ConstantPerformanceModel
from repro.core.partition import (
    FPM_MAX_ITERS,
    FPM_TOLERANCE,
    geometric_partition,
    partition_cpm,
    partition_fpm,
)
from repro.core.solver import SolveResult, Solver, SolverOptions, solve
from repro.core.speed_function import SpeedFunction, SpeedSample


def _fn(pairs, bounded=False):
    return SpeedFunction(
        [SpeedSample(size=x, speed=s) for x, s in pairs], bounded=bounded
    )


@pytest.fixture()
def models():
    return [
        _fn([(10.0, 5.0), (100.0, 4.0)]),
        _fn([(10.0, 20.0), (100.0, 12.0)]),
    ]


# ---------------------------------------------------------------------------
# options
# ---------------------------------------------------------------------------


def test_options_defaults():
    opts = SolverOptions()
    assert opts.strategy == "fpm"
    assert opts.hierarchy is False
    assert opts.tolerance == FPM_TOLERANCE
    assert opts.max_iters == FPM_MAX_ITERS
    assert opts.aggregate_samples == 24


def test_homogeneous_is_normalised_to_even():
    assert SolverOptions(strategy="homogeneous").strategy == "even"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"strategy": "quantum"},
        {"tolerance": 0.0},
        {"tolerance": -1e-9},
        {"max_iters": 0},
        {"aggregate_samples": 0},
        {"hierarchy": True, "strategy": "cpm"},
    ],
)
def test_invalid_options_raise(kwargs):
    with pytest.raises((ValueError, TypeError)):
        SolverOptions(**kwargs)


def test_options_are_keyword_only():
    with pytest.raises(TypeError):
        SolverOptions("fpm")  # noqa: B026 - deliberate positional misuse


# ---------------------------------------------------------------------------
# solver construction & immutability
# ---------------------------------------------------------------------------


def test_solver_merges_keyword_overrides():
    solver = Solver(SolverOptions(strategy="cpm"), tolerance=1e-9)
    assert solver.options.strategy == "cpm"
    assert solver.options.tolerance == 1e-9


def test_solver_is_immutable():
    solver = Solver()
    with pytest.raises(AttributeError):
        solver.options = SolverOptions()


def test_with_options_derives_a_new_solver():
    base = Solver()
    variant = base.with_options(strategy="even")
    assert variant is not base
    assert variant.options.strategy == "even"
    assert base.options.strategy == "fpm"


# ---------------------------------------------------------------------------
# dispatch: each strategy is exactly the underlying algorithm
# ---------------------------------------------------------------------------


def test_fpm_dispatch(models):
    result = Solver().solve(models, 200.0)
    assert isinstance(result, SolveResult)
    assert result.strategy == "fpm"
    assert result.hierarchy is None
    assert list(result.allocations) == partition_fpm(models, 200.0)
    assert math.isclose(result.total, 200.0, rel_tol=1e-9)


def test_geometric_dispatch(models):
    result = Solver(strategy="geometric").solve(models, 200.0)
    assert list(result.allocations) == geometric_partition(models, 200.0)


def test_even_dispatch(models):
    result = Solver(strategy="even").solve(models, 200.0)
    assert result.allocations == (100.0, 100.0)


def test_cpm_dispatch_on_constants():
    constants = [
        ConstantPerformanceModel(name="a", speed=1.0),
        ConstantPerformanceModel(name="b", speed=3.0),
    ]
    result = Solver(strategy="cpm").solve(constants, 100.0)
    assert list(result.allocations) == partition_cpm(constants, 100.0)
    assert result.allocations == (25.0, 75.0)


def test_module_level_solve_is_the_one_shot_form(models):
    assert (
        solve(models, 200.0, strategy="even").allocations
        == Solver(strategy="even").solve(models, 200.0).allocations
    )


def test_as_dict_names_the_allocations(models):
    result = Solver(strategy="even").solve(models, 10.0)
    assert result.as_dict(["cpu", "gpu"]) == {"cpu": 5.0, "gpu": 5.0}
    with pytest.raises(ValueError):
        result.as_dict(["only-one"])


# ---------------------------------------------------------------------------
# hierarchical mode
# ---------------------------------------------------------------------------


def test_hierarchy_solve_carries_the_tree(models):
    solver = Solver(hierarchy=True, aggregate_samples=8)
    result = solver.solve([models, models], 1000)
    tree = result.hierarchy
    assert tree is not None
    assert sum(tree.node_allocations) == 1000
    assert tree.node_allocations == (500, 500)  # identical nodes split evenly
    assert result.allocations == tuple(float(a) for a in tree.flat)
    assert sum(result.allocations) == 1000.0


# ---------------------------------------------------------------------------
# deprecation shim: repro.api.partition
# ---------------------------------------------------------------------------


def test_api_partition_shim_warns_exactly_once(models):
    import repro.api as api

    api._warned_deprecated.discard("partition")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        first = api.partition
        second = api.partition
    emitted = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(emitted) == 1
    assert "repro.api.Solver" in str(emitted[0].message)
    assert first is second


def test_api_partition_shim_matches_solver(models):
    import repro.api as api

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = api.partition(models, 200.0)
    assert legacy == list(Solver().solve(models, 200.0).allocations)


def test_api_unknown_attribute_still_raises():
    import repro.api as api

    with pytest.raises(AttributeError):
        api.definitely_not_a_name
