"""Round-trip tests for model persistence."""

import json
import math

import pytest

from repro.core.cpm import ConstantPerformanceModel
from repro.core.fpm import FunctionalPerformanceModel
from repro.core.serialization import (
    cpm_from_dict,
    cpm_to_dict,
    fpm_from_dict,
    fpm_to_dict,
    load_models,
    save_models,
)
from repro.core.speed_function import SpeedFunction, SpeedSample


def sample_fpm(bounded=False):
    fn = SpeedFunction(
        [
            SpeedSample(10, 50, rel_precision=0.01),
            SpeedSample(100, 100),
        ],
        bounded=bounded,
    )
    return FunctionalPerformanceModel(
        name="socket0:c6",
        speed_function=fn,
        kernel_name="cpu-gemm",
        block_size=640,
        repetitions_total=33,
    )


class TestFpmRoundTrip:
    def test_identity(self):
        m = sample_fpm()
        r = fpm_from_dict(fpm_to_dict(m))
        assert r.name == m.name
        assert r.kernel_name == m.kernel_name
        assert r.block_size == m.block_size
        assert r.repetitions_total == m.repetitions_total
        assert len(r.speed_function) == 2
        assert r.speed(55) == m.speed(55)

    def test_bounded_preserved(self):
        r = fpm_from_dict(fpm_to_dict(sample_fpm(bounded=True)))
        assert r.bounded

    def test_rel_precision_preserved_and_nan_omitted(self):
        d = fpm_to_dict(sample_fpm())
        assert d["samples"][0]["rel_precision"] == 0.01
        assert "rel_precision" not in d["samples"][1]
        r = fpm_from_dict(d)
        assert math.isnan(r.speed_function.samples[1].rel_precision)

    def test_rejects_wrong_type(self):
        with pytest.raises(ValueError, match="not an FPM"):
            fpm_from_dict({"type": "cpm"})

    def test_rejects_wrong_format_version(self):
        d = fpm_to_dict(sample_fpm())
        d["format"] = 99
        with pytest.raises(ValueError, match="format"):
            fpm_from_dict(d)


class TestCpmRoundTrip:
    def test_identity(self):
        m = ConstantPerformanceModel("gpu", 950.0, "k", calibration_size=266.0)
        r = cpm_from_dict(cpm_to_dict(m))
        assert r == m

    def test_nan_calibration_omitted(self):
        m = ConstantPerformanceModel("gpu", 950.0)
        d = cpm_to_dict(m)
        assert "calibration_size" not in d
        assert math.isnan(cpm_from_dict(d).calibration_size)


class TestFiles:
    def test_save_load_mixed(self, tmp_path):
        path = tmp_path / "models.json"
        models = [sample_fpm(), ConstantPerformanceModel("c", 5.0)]
        save_models(path, models)
        loaded = load_models(path)
        assert isinstance(loaded[0], FunctionalPerformanceModel)
        assert isinstance(loaded[1], ConstantPerformanceModel)
        assert loaded[0].name == "socket0:c6"

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "models.json"
        save_models(path, [sample_fpm()])
        payload = json.loads(path.read_text())
        assert isinstance(payload, list)

    def test_save_rejects_unknown_types(self, tmp_path):
        with pytest.raises(TypeError):
            save_models(tmp_path / "x.json", [object()])

    def test_load_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="list"):
            load_models(path)

    def test_load_rejects_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('[{"type": "mystery"}]')
        with pytest.raises(ValueError, match="mystery"):
            load_models(path)
