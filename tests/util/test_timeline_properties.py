"""Property-based tests of resource timelines (hypothesis).

The overlap simulator's integrity rests on :class:`Timeline` semantics:
``merge_intervals`` must compute the exact union of half-open intervals,
and ``conflicts()`` must flag double-booking exactly when a brute-force
all-pairs check would.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.timeline import Interval, Timeline, merge_intervals

pytestmark = pytest.mark.property


@st.composite
def interval(draw, resources=("compute", "dma_in", "dma_out")) -> Interval:
    start = draw(st.floats(min_value=0.0, max_value=100.0))
    length = draw(st.floats(min_value=0.0, max_value=20.0))
    return Interval(draw(st.sampled_from(resources)), start, start + length)


intervals = st.lists(interval(), max_size=20)


def _in_union(point: float, spans) -> bool:
    return any(start <= point < end for start, end in spans)


@given(intervals)
def test_merge_intervals_is_sorted_and_disjoint(ivs):
    merged = merge_intervals(ivs)
    assert merged == sorted(merged)
    for (_, prev_end), (next_start, _) in zip(merged, merged[1:]):
        assert next_start > prev_end


@given(intervals)
def test_merge_intervals_preserves_the_union(ivs):
    merged = merge_intervals(ivs)
    # probe at every endpoint and segment midpoint: membership in the
    # merged spans must match membership in the original set
    probes = set()
    for iv in ivs:
        probes.update((iv.start, iv.end, (iv.start + iv.end) / 2))
    for p in probes:
        original = any(iv.start <= p < iv.end for iv in ivs)
        assert _in_union(p, merged) == original
    total = sum(iv.duration for iv in ivs)
    # summation order differs between the two sides, so allow float round-off
    assert sum(e - s for s, e in merged) <= total + 1e-9 * max(1.0, total)


@given(intervals)
def test_conflicts_matches_brute_force(ivs):
    timeline = Timeline(list(ivs))
    brute = any(
        a.resource == b.resource
        and a.duration > 0
        and b.duration > 0
        and a.overlaps(b)
        for i, a in enumerate(ivs)
        for b in ivs[i + 1 :]
    )
    assert bool(timeline.conflicts()) == brute
    if brute:
        with pytest.raises(ValueError):
            timeline.validate()
    else:
        timeline.validate()


@given(intervals)
def test_utilization_is_a_fraction_of_the_makespan(ivs):
    timeline = Timeline(list(ivs))
    for resource in timeline.resources():
        busy = timeline.busy_time(resource)
        assert 0.0 <= busy <= timeline.makespan() + 1e-12
        assert 0.0 <= timeline.utilization(resource) <= 1.0 + 1e-12
