"""Unit tests for the ASCII table renderer."""

import pytest

from repro.util.tables import format_cell, render_series, render_table


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(3.14159, precision=2) == "3.14"

    def test_int_unchanged(self):
        assert format_cell(42) == "42"

    def test_bool_not_formatted_as_float(self):
        assert format_cell(True) == "True"


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["n", "t"], [[1, 2.5]])
        lines = out.splitlines()
        assert lines[0].strip().startswith("n")
        assert "2.50" in lines[2]

    def test_title_prepended(self):
        out = render_table(["a"], [[1]], title="My table")
        assert out.splitlines()[0] == "My table"

    def test_column_alignment(self):
        out = render_table(["col"], [[1], [100]])
        rows = out.splitlines()[-2:]
        assert len(rows[0]) == len(rows[1])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="row 0"):
            render_table(["a", "b"], [[1]])


class TestRenderSeries:
    def test_headers_and_rows(self):
        out = render_series("x", [1, 2], {"y": [10.0, 20.0]})
        assert "x" in out and "y" in out
        assert "10.00" in out and "20.00" in out

    def test_multiple_series(self):
        out = render_series("x", [1], {"a": [1.0], "b": [2.0]})
        header = out.splitlines()[0]
        assert "a" in header and "b" in header

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="series 'y'"):
            render_series("x", [1, 2], {"y": [1.0]})
