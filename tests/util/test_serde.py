"""Round trips through the generic dataclass <-> JSON codec."""

import dataclasses
import json
from typing import Optional

import pytest

from repro.util.serde import (
    from_jsonable,
    qualified_type_name,
    resolve_type_name,
    to_jsonable,
)


@dataclasses.dataclass(frozen=True)
class Leaf:
    label: str
    weight: float


@dataclasses.dataclass(frozen=True)
class Tree:
    name: str
    leaves: tuple[Leaf, ...]
    tags: tuple[str, ...] = ()
    scores: dict[int, float] = dataclasses.field(default_factory=dict)
    note: Optional[str] = None


class TestRoundTrip:
    def test_nested_dataclasses_and_tuples(self):
        tree = Tree(
            name="t",
            leaves=(Leaf("a", 1.5), Leaf("b", 2.25)),
            tags=("x", "y"),
            scores={3: 0.1, 7: 0.2},
            note="hello",
        )
        data = to_jsonable(tree)
        # the flattened form must survive an actual JSON encode/decode
        restored = from_jsonable(Tree, json.loads(json.dumps(data)))
        assert restored == tree
        assert isinstance(restored.leaves, tuple)
        assert isinstance(restored.leaves[0], Leaf)

    def test_int_dict_keys_are_restored(self):
        tree = Tree(name="t", leaves=(), scores={42: 1.0})
        restored = from_jsonable(Tree, json.loads(json.dumps(to_jsonable(tree))))
        assert restored.scores == {42: 1.0}
        assert all(isinstance(k, int) for k in restored.scores)

    def test_optional_none_survives(self):
        tree = Tree(name="t", leaves=())
        assert from_jsonable(Tree, to_jsonable(tree)).note is None

    def test_floats_survive_exactly(self):
        leaf = Leaf("pi-ish", 0.1 + 0.2)
        restored = from_jsonable(Leaf, json.loads(json.dumps(to_jsonable(leaf))))
        assert restored.weight == leaf.weight

    def test_missing_fields_fall_back_to_defaults(self):
        restored = from_jsonable(Tree, {"name": "t", "leaves": []})
        assert restored.tags == () and restored.scores == {}

    def test_real_experiment_result_round_trips(self, fast_config):
        from repro.experiments.fig6_process_times import run

        result = run(fast_config)
        restored = from_jsonable(type(result), to_jsonable(result))
        assert restored == result

    def test_unexportable_values_are_rejected(self):
        with pytest.raises(TypeError, match="cannot export"):
            to_jsonable({"f": object()})

    def test_non_mapping_for_dataclass_is_rejected(self):
        with pytest.raises(TypeError, match="expected a mapping"):
            from_jsonable(Leaf, [1, 2])


class TestTypeNames:
    def test_round_trip(self):
        from repro.experiments.fig6_process_times import Fig6Result

        name = qualified_type_name(Fig6Result)
        assert name == "repro.experiments.fig6_process_times:Fig6Result"
        assert resolve_type_name(name) is Fig6Result

    def test_malformed_names_rejected(self):
        with pytest.raises(ValueError):
            resolve_type_name("no-colon")
        with pytest.raises(ValueError):
            resolve_type_name("mod:Outer.Inner")

    def test_non_class_target_rejected(self):
        with pytest.raises(TypeError):
            resolve_type_name("math:pi")
