"""Unit tests for the hierarchical RNG streams."""

import pytest

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_structure_matters(self):
        # ("ab",) and ("a", "b") must differ: separator is included
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")


class TestRngStream:
    def test_same_child_same_draws(self):
        root = RngStream(9)
        assert root.child("x").uniform() == root.child("x").uniform()

    def test_different_children_differ(self):
        root = RngStream(9)
        assert root.child("x").uniform() != root.child("y").uniform()

    def test_nested_children(self):
        a = RngStream(9).child("dev").child("rep0")
        b = RngStream(9).child("dev").child("rep0")
        assert a.normal() == b.normal()

    def test_lognormal_factor_median_one_when_sigma_zero(self):
        assert RngStream(1).lognormal_factor(0.0) == 1.0

    def test_lognormal_factor_positive(self):
        s = RngStream(3)
        for i in range(50):
            assert s.child(str(i)).lognormal_factor(0.5) > 0.0

    def test_integers_in_range(self):
        s = RngStream(5)
        for i in range(100):
            v = s.integers(2, 7)
            assert 2 <= v < 7

    def test_shuffle_is_permutation(self):
        s = RngStream(11)
        items = list(range(20))
        shuffled = list(items)
        s.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_reorder_insensitivity_of_named_children(self):
        """Consuming children in different orders yields identical streams."""
        root1 = RngStream(42)
        a1 = root1.child("a").uniform()
        b1 = root1.child("b").uniform()
        root2 = RngStream(42)
        b2 = root2.child("b").uniform()
        a2 = root2.child("a").uniform()
        assert (a1, b1) == (a2, b2)
