"""Unit tests for the validation helpers."""

import math

import pytest

from repro.util.validation import (
    check_in,
    check_nonnegative,
    check_nonnegative_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_same_length,
    check_sorted_unique,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -2)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_positive("x", math.nan)
        with pytest.raises(ValueError):
            check_positive("x", math.inf)

    def test_rejects_bool_and_str(self):
        with pytest.raises(TypeError):
            check_positive("x", True)
        with pytest.raises(TypeError):
            check_positive("x", "3")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -1e-9)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckIn:
    def test_accepts_member(self):
        assert check_in("mode", "a", ("a", "b")) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="mode"):
            check_in("mode", "c", ("a", "b"))


class TestIntChecks:
    def test_positive_int(self):
        assert check_positive_int("n", 3) == 3
        with pytest.raises(ValueError):
            check_positive_int("n", 0)
        with pytest.raises(TypeError):
            check_positive_int("n", 3.0)
        with pytest.raises(TypeError):
            check_positive_int("n", True)

    def test_nonnegative_int(self):
        assert check_nonnegative_int("n", 0) == 0
        with pytest.raises(ValueError):
            check_nonnegative_int("n", -1)


class TestSequences:
    def test_sorted_unique_passes(self):
        check_sorted_unique("xs", [1, 2, 3])

    def test_sorted_unique_rejects_duplicates(self):
        with pytest.raises(ValueError):
            check_sorted_unique("xs", [1, 1, 2])

    def test_sorted_unique_rejects_descending(self):
        with pytest.raises(ValueError):
            check_sorted_unique("xs", [3, 2])

    def test_same_length(self):
        check_same_length("a", [1], "b", [2])
        with pytest.raises(ValueError, match="a and b"):
            check_same_length("a", [1], "b", [])
