"""Unit and property tests for resource timelines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.timeline import Interval, Timeline, merge_intervals


class TestInterval:
    def test_duration(self):
        assert Interval("r", 1.0, 3.5).duration == 2.5

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            Interval("r", 2.0, 1.0)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Interval("r", -1.0, 0.0)

    def test_overlap_detection(self):
        a = Interval("r", 0.0, 2.0)
        assert a.overlaps(Interval("r", 1.0, 3.0))
        assert not a.overlaps(Interval("r", 2.0, 3.0))  # half-open


class TestTimeline:
    def test_makespan(self):
        tl = Timeline()
        tl.add("a", 0.0, 1.0)
        tl.add("b", 0.5, 2.5)
        assert tl.makespan() == 2.5

    def test_makespan_empty(self):
        assert Timeline().makespan() == 0.0

    def test_busy_time_merges_overlaps(self):
        tl = Timeline()
        tl.add("a", 0.0, 2.0)
        tl.add("a", 1.0, 3.0)
        assert tl.busy_time("a") == pytest.approx(3.0)

    def test_utilization(self):
        tl = Timeline()
        tl.add("a", 0.0, 1.0)
        tl.add("b", 0.0, 4.0)
        assert tl.utilization("a") == pytest.approx(0.25)

    def test_conflicts_found(self):
        tl = Timeline()
        tl.add("eng", 0.0, 2.0, "op1")
        tl.add("eng", 1.0, 3.0, "op2")
        assert len(tl.conflicts()) == 1
        with pytest.raises(ValueError, match="double-booked"):
            tl.validate()

    def test_no_conflict_across_resources(self):
        tl = Timeline()
        tl.add("a", 0.0, 2.0)
        tl.add("b", 0.0, 2.0)
        tl.validate()

    def test_zero_duration_never_conflicts(self):
        tl = Timeline()
        tl.add("a", 1.0, 1.0)
        tl.add("a", 0.0, 2.0)
        tl.validate()

    def test_resources_sorted(self):
        tl = Timeline()
        tl.add("z", 0, 1)
        tl.add("a", 0, 1)
        assert tl.resources() == ["a", "z"]


class TestMergeIntervals:
    def test_disjoint_kept(self):
        ivs = [Interval("r", 0, 1), Interval("r", 2, 3)]
        assert merge_intervals(ivs) == [(0, 1), (2, 3)]

    def test_touching_merged(self):
        ivs = [Interval("r", 0, 1), Interval("r", 1, 2)]
        assert merge_intervals(ivs) == [(0, 2)]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=100),
            ).map(lambda t: Interval("r", min(t), max(t))),
            max_size=30,
        )
    )
    @settings(max_examples=60)
    def test_merged_spans_are_disjoint_and_cover_same_length(self, ivs):
        merged = merge_intervals(ivs)
        # disjoint and ordered
        for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
            assert e1 < s2
        # union length never exceeds the sum, never below the longest
        total = sum(e - s for s, e in merged)
        assert total <= sum(iv.duration for iv in ivs) + 1e-9
        if ivs:
            assert total >= max(iv.duration for iv in ivs) - 1e-9
