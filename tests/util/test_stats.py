"""Unit and property tests for the statistics helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    RunningStats,
    coefficient_of_variation,
    confidence_interval,
    geometric_mean,
    relative_precision,
    student_t_critical,
)


class TestStudentT:
    def test_matches_known_value(self):
        # t(0.975, 9) ~ 2.262
        assert student_t_critical(0.95, 9) == pytest.approx(2.262, abs=1e-3)

    def test_wider_for_higher_confidence(self):
        assert student_t_critical(0.99, 10) > student_t_critical(0.90, 10)

    def test_rejects_bad_dof(self):
        with pytest.raises(ValueError):
            student_t_critical(0.95, 0)


class TestConfidenceInterval:
    def test_symmetric_about_mean(self):
        lo, hi = confidence_interval(10.0, 2.0, 16)
        assert lo + hi == pytest.approx(20.0)
        assert hi > 10.0

    def test_needs_two_observations(self):
        with pytest.raises(ValueError):
            confidence_interval(1.0, 0.0, 1)

    def test_relative_precision_inf_for_single(self):
        assert relative_precision(1.0, 0.5, 1) == math.inf

    def test_relative_precision_zero_for_constant(self):
        assert relative_precision(5.0, 0.0, 10) == 0.0


class TestRunningStats:
    def test_mean_and_variance(self):
        rs = RunningStats()
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for v in data:
            rs.add(v)
        assert rs.mean == pytest.approx(np.mean(data))
        assert rs.variance == pytest.approx(np.var(data, ddof=1))

    def test_rejects_nonfinite(self):
        rs = RunningStats()
        with pytest.raises(ValueError):
            rs.add(math.nan)

    def test_reliability_of_tight_sample(self):
        rs = RunningStats()
        for v in (1.0, 1.001, 0.999, 1.0, 1.0):
            rs.add(v)
        assert rs.is_reliable(rel_err=0.01)

    def test_unreliability_of_wild_sample(self):
        rs = RunningStats()
        for v in (1.0, 5.0, 0.2, 3.0, 9.0):
            rs.add(v)
        assert not rs.is_reliable(rel_err=0.01)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_matches_numpy_on_random_samples(self, data):
        rs = RunningStats()
        for v in data:
            rs.add(v)
        assert rs.mean == pytest.approx(float(np.mean(data)), rel=1e-9, abs=1e-6)
        assert rs.variance == pytest.approx(
            float(np.var(data, ddof=1)), rel=1e-7, abs=1e-5
        )

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=30),
        st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=30),
    )
    @settings(max_examples=40)
    def test_merge_equals_sequential(self, a, b):
        ra = RunningStats()
        for v in a:
            ra.add(v)
        rb = RunningStats()
        for v in b:
            rb.add(v)
        merged = ra.merge(rb)
        combined = RunningStats()
        for v in a + b:
            combined.add(v)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-9)
        assert merged.variance == pytest.approx(
            combined.variance, rel=1e-7, abs=1e-7
        )

    def test_merge_with_empty(self):
        rs = RunningStats()
        rs.add(3.0)
        merged = rs.merge(RunningStats())
        assert merged.count == 1
        assert merged.mean == 3.0


class TestAggregates:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0
        assert coefficient_of_variation([1.0]) == 0.0
        assert coefficient_of_variation([1.0, 3.0]) > 0.0
