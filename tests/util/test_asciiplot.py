"""Unit tests for the terminal line plots."""

import math

import pytest

from repro.util.asciiplot import line_plot


class TestLinePlot:
    def test_basic_structure(self):
        out = line_plot([1, 2, 3], {"y": [1.0, 4.0, 2.0]}, width=20, height=6)
        lines = out.splitlines()
        assert any("+--" in line for line in lines)  # x axis
        assert "o = y" in lines[-1]  # legend

    def test_title_and_labels(self):
        out = line_plot(
            [0, 1],
            {"a": [0.0, 1.0]},
            title="T",
            y_label="GF",
            x_label="blocks",
        )
        assert out.splitlines()[0] == "T"
        assert "blocks" in out

    def test_extreme_values_on_borders(self):
        out = line_plot([0, 10], {"a": [5.0, 25.0]}, width=30, height=5)
        assert "25" in out and "5" in out

    def test_multiple_series_distinct_markers(self):
        out = line_plot(
            [1, 2], {"a": [1.0, 2.0], "b": [2.0, 1.0]}, width=20, height=5
        )
        assert "o = a" in out and "x = b" in out
        body = "\n".join(out.splitlines()[1:-3])
        assert "o" in body and "x" in body

    def test_constant_series_handled(self):
        out = line_plot([1, 2, 3], {"flat": [2.0, 2.0, 2.0]})
        assert "flat" in out

    def test_nonfinite_points_skipped(self):
        out = line_plot([1, 2, 3], {"y": [1.0, math.nan, 3.0]})
        assert "y" in out

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            line_plot([1], {})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            line_plot([1, 2], {"y": [1.0]})

    def test_rejects_too_many_series(self):
        series = {f"s{i}": [1.0] for i in range(9)}
        with pytest.raises(ValueError, match="at most"):
            line_plot([1], series)

    def test_rejects_all_nan(self):
        with pytest.raises(ValueError, match="nothing to plot"):
            line_plot([1], {"y": [math.nan]})
