"""Unit tests for workload unit conversions."""

import pytest

from repro.util.units import (
    BYTES_PER_SP_ELEMENT,
    DEFAULT_BLOCKING_FACTOR,
    blocks_to_bytes,
    blocks_to_elements,
    gemm_kernel_flops,
    gflops,
    matmul_total_flops,
    mib,
    seconds_for,
)


class TestBlocks:
    def test_one_block_elements(self):
        assert blocks_to_elements(1, 640) == 640 * 640

    def test_bytes_single_precision(self):
        assert blocks_to_bytes(1, 640) == 640 * 640 * BYTES_PER_SP_ELEMENT

    def test_default_blocking_factor_is_papers(self):
        assert DEFAULT_BLOCKING_FACTOR == 640

    def test_fractional_area_allowed(self):
        assert blocks_to_elements(0.5, 10) == 50.0

    def test_rejects_negative_area(self):
        with pytest.raises(ValueError):
            blocks_to_elements(-1, 640)


class TestFlops:
    def test_kernel_flops_linear_in_area(self):
        one = gemm_kernel_flops(1, 640)
        assert gemm_kernel_flops(7, 640) == pytest.approx(7 * one)

    def test_kernel_flops_value(self):
        # 2 * x * b^3
        assert gemm_kernel_flops(1, 640) == pytest.approx(2 * 640**3)

    def test_total_flops_is_iterations_times_kernel(self):
        n, b = 12, 64
        per_iteration = gemm_kernel_flops(n * n, b)
        assert matmul_total_flops(n, b) == pytest.approx(n * per_iteration)

    def test_total_flops_cube_law(self):
        assert matmul_total_flops(40, 640) == pytest.approx(2 * (40 * 640) ** 3)


class TestSpeed:
    def test_gflops(self):
        assert gflops(2e9, 2.0) == pytest.approx(1.0)

    def test_seconds_for_inverts_gflops(self):
        flops = 3.3e12
        t = seconds_for(flops, 150.0)
        assert gflops(flops, t) == pytest.approx(150.0)

    def test_gflops_rejects_zero_time(self):
        with pytest.raises(ValueError):
            gflops(1.0, 0.0)

    def test_mib(self):
        assert mib(1024 * 1024) == pytest.approx(1.0)
