"""Unit tests for device-bound processes."""

import pytest

from repro.measurement.binding import default_binding
from repro.runtime.process import bind_processes


@pytest.fixture()
def processes(node, devices):
    sockets, gpus = devices
    return bind_processes(default_binding(node), sockets, gpus)


class TestBindProcesses:
    def test_one_process_per_core(self, node, processes):
        assert len(processes) == node.total_cores
        assert [p.rank for p in processes] == list(range(node.total_cores))

    def test_dedicated_processes_have_gpu_kernels(self, processes):
        dedicated = [p for p in processes if p.is_dedicated]
        assert len(dedicated) == 2
        for p in dedicated:
            assert "gpu-gemm" in p.kernel.name

    def test_cpu_processes_have_core_kernels(self, processes):
        cpu = [p for p in processes if not p.is_dedicated]
        assert len(cpu) == 22
        for p in cpu:
            assert "cpu-core-gemm" in p.kernel.name

    def test_gpu_contention_state(self, processes):
        """GPU processes see the 5 CPU kernels of their socket."""
        dedicated = [p for p in processes if p.is_dedicated]
        assert all(p.busy_cpu_cores == 5 for p in dedicated)

    def test_cpu_processes_on_gpu_socket_know_it(self, node, processes):
        by_rank = {p.rank: p for p in processes}
        # rank 1 shares socket 0 with the C870's host process
        assert by_rank[1].kernel.gpu_active is True
        # socket 2 (ranks 12..17) is GPU-free
        assert by_rank[12].kernel.gpu_active is False

    def test_active_core_counts(self, processes):
        by_rank = {p.rank: p for p in processes}
        assert by_rank[1].kernel.active_cores == 5  # socket with GPU
        assert by_rank[12].kernel.active_cores == 6  # full socket

    def test_iteration_time_zero_for_empty(self, processes):
        assert processes[0].iteration_time(0) == 0.0

    def test_iteration_time_positive(self, processes):
        for p in processes:
            assert p.iteration_time(10.0) > 0.0

    def test_unloaded_cpu_removes_gpu_contention(self, node, devices):
        sockets, gpus = devices
        procs = bind_processes(
            default_binding(node), sockets, gpus, cpu_loaded=False
        )
        dedicated = [p for p in procs if p.is_dedicated]
        assert all(p.busy_cpu_cores == 0 for p in dedicated)

    def test_gpu_version_selectable(self, node, devices):
        sockets, gpus = devices
        procs = bind_processes(default_binding(node), sockets, gpus, gpu_version=1)
        dedicated = [p for p in procs if p.is_dedicated]
        assert all("v1" in p.kernel.name for p in dedicated)
