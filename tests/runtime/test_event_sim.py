"""Unit tests for the discrete-event engine."""

import pytest

from repro.runtime.event_sim import EventSimulator


class TestEventSimulator:
    def test_clock_advances_in_order(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(2.0, lambda s: seen.append(("b", s.now)))
        sim.schedule(1.0, lambda s: seen.append(("a", s.now)))
        end = sim.run()
        assert seen == [("a", 1.0), ("b", 2.0)]
        assert end == 2.0

    def test_ties_break_by_insertion(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(1.0, lambda s: seen.append("first"))
        sim.schedule(1.0, lambda s: seen.append("second"))
        sim.run()
        assert seen == ["first", "second"]

    def test_events_can_schedule_events(self):
        sim = EventSimulator()
        seen = []

        def chain(s):
            seen.append(s.now)
            if len(seen) < 3:
                s.schedule(1.0, chain)

        sim.schedule(0.0, chain)
        sim.run()
        assert seen == [0.0, 1.0, 2.0]

    def test_run_until(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(1.0, lambda s: seen.append(1))
        sim.schedule(5.0, lambda s: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        assert sim.pending == 1
        sim.run()
        assert seen == [1, 5]

    def test_rejects_past_scheduling(self):
        sim = EventSimulator()
        sim.schedule(1.0, lambda s: s.schedule(-0.5, lambda s2: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_schedule_at_absolute(self):
        sim = EventSimulator()
        seen = []
        sim.schedule_at(3.0, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [3.0]

    def test_events_processed_counter(self):
        sim = EventSimulator()
        for _ in range(4):
            sim.schedule(1.0, lambda s: None)
        sim.run()
        assert sim.events_processed == 4
