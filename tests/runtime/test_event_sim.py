"""Unit tests for the discrete-event engine."""

import numpy as np
import pytest

from repro.runtime.event_sim import EventSimulator


class TestEventSimulator:
    def test_clock_advances_in_order(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(2.0, lambda s: seen.append(("b", s.now)))
        sim.schedule(1.0, lambda s: seen.append(("a", s.now)))
        end = sim.run()
        assert seen == [("a", 1.0), ("b", 2.0)]
        assert end == 2.0

    def test_ties_break_by_insertion(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(1.0, lambda s: seen.append("first"))
        sim.schedule(1.0, lambda s: seen.append("second"))
        sim.run()
        assert seen == ["first", "second"]

    def test_events_can_schedule_events(self):
        sim = EventSimulator()
        seen = []

        def chain(s):
            seen.append(s.now)
            if len(seen) < 3:
                s.schedule(1.0, chain)

        sim.schedule(0.0, chain)
        sim.run()
        assert seen == [0.0, 1.0, 2.0]

    def test_run_until(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(1.0, lambda s: seen.append(1))
        sim.schedule(5.0, lambda s: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        assert sim.pending == 1
        sim.run()
        assert seen == [1, 5]

    def test_rejects_past_scheduling(self):
        sim = EventSimulator()
        sim.schedule(1.0, lambda s: s.schedule(-0.5, lambda s2: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_schedule_at_absolute(self):
        sim = EventSimulator()
        seen = []
        sim.schedule_at(3.0, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [3.0]

    def test_events_processed_counter(self):
        sim = EventSimulator()
        for _ in range(4):
            sim.schedule(1.0, lambda s: None)
        sim.run()
        assert sim.events_processed == 4

    def test_cancelled_event_does_not_run(self):
        sim = EventSimulator()
        seen = []
        handle = sim.schedule(1.0, lambda s: seen.append("cancelled"))
        sim.schedule(2.0, lambda s: seen.append("kept"))
        handle.cancel()
        assert handle.cancelled
        sim.run()
        assert seen == ["kept"]
        assert sim.events_processed == 1


class TestPendingCount:
    """`pending` counts live events only (regression: cancelled handles
    used to keep counting until they were lazily drained)."""

    def test_pending_excludes_cancelled(self):
        sim = EventSimulator()
        handle = sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None)
        assert sim.pending == 2
        handle.cancel()
        assert sim.pending == 1  # cancelled but still in the heap
        handle.cancel()  # idempotent: must not double-decrement
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0

    def test_cancel_after_execution_is_noop(self):
        sim = EventSimulator()
        handle = sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None)
        sim.run(until=1.5)
        assert sim.pending == 1
        handle.cancel()  # already executed: no effect on the count
        assert sim.pending == 1

    def test_pending_excludes_cancelled_batch(self):
        sim = EventSimulator()
        handle = sim.schedule_batch([1.0, 2.0, 3.0], lambda s, t, i: None)
        sim.schedule(9.0, lambda s: None)
        assert sim.pending == 4
        handle.cancel()
        assert sim.pending == 1
        assert handle.remaining == 0
        sim.run()
        assert sim.pending == 0
        assert sim.events_processed == 1


class TestBatchLane:
    def test_batch_fires_like_scalar_events(self):
        delays = [3.0, 1.0, 2.0]
        scalar = EventSimulator()
        order_scalar = []
        for i, d in enumerate(delays):
            scalar.schedule(d, lambda s, i=i: order_scalar.append((s.now, i)))
        scalar.run()

        batch = EventSimulator()
        order_batch = []

        def on_fire(s, times, indices):
            order_batch.extend(
                (float(t), int(i)) for t, i in zip(times, indices)
            )

        batch.schedule_batch(delays, on_fire)
        end = batch.run()
        assert order_batch == order_scalar
        assert end == scalar.now
        assert batch.events_processed == scalar.events_processed == 3

    def test_ties_break_by_element_index(self):
        sim = EventSimulator()
        seen = []
        sim.schedule_batch(
            [1.0, 1.0, 1.0],
            lambda s, t, i: seen.extend(int(j) for j in i),
        )
        sim.run()
        assert seen == [0, 1, 2]

    def test_interleaves_with_scalar_lane(self):
        sim = EventSimulator()
        seen = []
        sim.schedule_batch(
            [1.0, 3.0], lambda s, t, i: seen.extend(("batch", int(j)) for j in i)
        )
        sim.schedule(2.0, lambda s: seen.append(("scalar", s.now)))
        sim.run()
        assert seen == [("batch", 0), ("scalar", 2.0), ("batch", 1)]

    def test_cross_lane_ties_break_by_schedule_order(self):
        # batch scheduled first wins the tie; scalar scheduled first wins too
        sim = EventSimulator()
        seen = []
        sim.schedule_batch([1.0], lambda s, t, i: seen.append("batch"))
        sim.schedule(1.0, lambda s: seen.append("scalar"))
        sim.run()
        assert seen == ["batch", "scalar"]

        sim2 = EventSimulator()
        seen2 = []
        sim2.schedule(1.0, lambda s: seen2.append("scalar"))
        sim2.schedule_batch([1.0], lambda s, t, i: seen2.append("batch"))
        sim2.run()
        assert seen2 == ["scalar", "batch"]

    def test_run_until_cuts_inside_a_generation(self):
        sim = EventSimulator()
        seen = []
        sim.schedule_batch(
            [1.0, 2.0, 3.0], lambda s, t, i: seen.extend(int(j) for j in i)
        )
        sim.run(until=2.5)
        assert seen == [0, 1]
        assert sim.now == 2.5
        assert sim.pending == 1
        sim.run()
        assert seen == [0, 1, 2]
        assert sim.now == 3.0

    def test_callback_scheduling_defers_to_run_boundary(self):
        # Run boundaries are fixed when the generation surfaces: a batch
        # callback's own scheduling takes effect after the contiguous run
        # that produced it (the documented batch-lane contract), so with
        # nothing else queued the whole generation fires as one run first.
        sim = EventSimulator()
        seen = []

        def on_fire(s, times, indices):
            seen.extend(("batch", int(j)) for j in indices)
            if int(indices[0]) == 0:
                s.schedule(1.5, lambda s2: seen.append(("scalar", s2.now)))

        sim.schedule_batch([1.0, 3.0, 5.0], on_fire)
        sim.run()
        assert seen == [
            ("batch", 0),
            ("batch", 1),
            ("batch", 2),
            ("scalar", 6.5),
        ]

    def test_preexisting_events_split_the_generation(self):
        # A foreign event already queued *before* the generation surfaces
        # does split it, and a callback scheduled from the first run
        # interleaves correctly with the remaining elements.
        sim = EventSimulator()
        seen = []

        def on_fire(s, times, indices):
            seen.extend(("batch", int(j)) for j in indices)
            if int(indices[0]) == 0:
                s.schedule(3.5, lambda s2: seen.append(("scalar", s2.now)))

        sim.schedule_batch([1.0, 5.0, 7.0], on_fire)
        sim.schedule(2.0, lambda s: seen.append(("probe", s.now)))
        sim.run()
        # element 0 fires alone (probe at 2.0 bounds the run); its callback
        # lands at 1.0 + 3.5 = 4.5, between the probe and element 1
        assert seen == [
            ("batch", 0),
            ("probe", 2.0),
            ("scalar", 4.5),
            ("batch", 1),
            ("batch", 2),
        ]

    def test_batch_clock_at_callback_is_last_fired_time(self):
        sim = EventSimulator()
        clocks = []
        sim.schedule_batch(
            [1.0, 2.0, 4.0], lambda s, t, i: clocks.append(s.now)
        )
        sim.run()
        assert clocks == [4.0]

    def test_cancel_mid_generation(self):
        sim = EventSimulator()
        seen = []
        holder = {}

        def on_fire(s, times, indices):
            seen.extend(int(j) for j in indices)
            holder["handle"].cancel()

        holder["handle"] = sim.schedule_batch([1.0, 3.0, 5.0], on_fire)
        sim.schedule(2.0, lambda s: None)
        sim.run()
        assert seen == [0]
        assert sim.events_processed == 2  # element 0 + the scalar event
        assert sim.pending == 0

    def test_rejects_bad_batches(self):
        sim = EventSimulator()
        with pytest.raises(ValueError):
            sim.schedule_batch([], lambda s, t, i: None)
        with pytest.raises(ValueError):
            sim.schedule_batch([1.0, -0.5], lambda s, t, i: None)
        with pytest.raises(ValueError):
            sim.schedule_batch(np.zeros((2, 2)), lambda s, t, i: None)
