"""Tests for the real-parallel numeric executor."""

import numpy as np
import pytest

from repro.core.geometry import ColumnPartition, Rectangle, column_based_partition
from repro.runtime.parallel_exec import parallel_partitioned_matmul


def random_matrices(n, block, seed=0):
    rng = np.random.default_rng(seed)
    size = n * block
    return (
        rng.standard_normal((size, size)),
        rng.standard_normal((size, size)),
    )


class TestParallelPartitionedMatmul:
    def test_matches_reference_heterogeneous(self):
        allocs = [40, 20, 20, 10, 10]
        part = column_based_partition(allocs, 10)
        a, b = random_matrices(10, 6)
        c, report = parallel_partitioned_matmul(a, b, part, block_size=6)
        np.testing.assert_allclose(c, a @ b, rtol=1e-10, atol=1e-10)
        assert report.rectangles_computed == 5
        assert report.elements_computed == a.size

    def test_parallel_workers_actually_used(self):
        allocs = [25, 25, 25, 25]
        part = column_based_partition(allocs, 10)
        a, b = random_matrices(10, 4, seed=1)
        c, report = parallel_partitioned_matmul(
            a, b, part, block_size=4, max_workers=4
        )
        assert report.workers_used == 4
        np.testing.assert_allclose(c, a @ b)

    def test_serial_fallback_for_one_worker(self):
        part = column_based_partition([16], 4)
        a, b = random_matrices(4, 4, seed=2)
        c, report = parallel_partitioned_matmul(
            a, b, part, block_size=4, max_workers=1
        )
        assert report.workers_used == 1
        np.testing.assert_allclose(c, a @ b)

    def test_zero_allocations_skipped(self):
        part = column_based_partition([100, 0], 10)
        a, b = random_matrices(10, 3, seed=3)
        c, report = parallel_partitioned_matmul(a, b, part, block_size=3)
        assert report.rectangles_computed == 1
        np.testing.assert_allclose(c, a @ b)

    def test_shape_validation(self):
        part = column_based_partition([16], 4)
        with pytest.raises(ValueError, match="matrices must be"):
            parallel_partitioned_matmul(
                np.zeros((3, 3)), np.zeros((3, 3)), part, block_size=4
            )

    def _duplicate_owner_partition(self):
        """Owner 0 holds two rectangles (one per column) — n=4, two columns."""
        return ColumnPartition(
            n=4,
            column_widths=(2, 2),
            rectangles=(
                Rectangle(owner=0, col=0, row=0, width=2, height=2),
                Rectangle(owner=1, col=0, row=2, width=2, height=2),
                Rectangle(owner=2, col=2, row=0, width=2, height=2),
                Rectangle(owner=0, col=2, row=2, width=2, height=2),
            ),
        )

    def test_owner_with_two_rectangles_assembles_both(self):
        """Regression: results were keyed by owner, so an owner's second
        rectangle overwrote its first and the matrix was mistiled."""
        part = self._duplicate_owner_partition()
        a, b = random_matrices(4, 5, seed=7)
        c, report = parallel_partitioned_matmul(
            a, b, part, block_size=5, max_workers=2
        )
        np.testing.assert_allclose(c, a @ b, rtol=1e-10, atol=1e-10)
        assert report.rectangles_computed == 4
        assert report.elements_computed == a.size

    def test_owner_with_two_rectangles_serial_path(self):
        part = self._duplicate_owner_partition()
        a, b = random_matrices(4, 5, seed=8)
        c, report = parallel_partitioned_matmul(
            a, b, part, block_size=5, max_workers=1
        )
        np.testing.assert_allclose(c, a @ b, rtol=1e-10, atol=1e-10)

    def test_workers_used_never_exceeds_rectangles(self):
        """Regression: the report claimed the requested pool size even
        when there were fewer tasks than workers."""
        part = column_based_partition([50, 50], 10)
        a, b = random_matrices(10, 3, seed=9)
        _, report = parallel_partitioned_matmul(
            a, b, part, block_size=3, max_workers=8
        )
        assert report.rectangles_computed == 2
        assert report.workers_used == 2

    def test_fpm_plan_parallel_correctness(self, node):
        """End to end: a real FPM plan, executed by real processes."""
        from repro.app.matmul import HybridMatMul, PartitioningStrategy

        app = HybridMatMul(node, seed=5, noise_sigma=0.0)
        app.build_models(
            max_blocks=400.0, cpu_points=5, gpu_points=6, adaptive=False
        )
        plan = app.plan(12, PartitioningStrategy.FPM)
        a, b = random_matrices(12, 4, seed=4)
        c, report = parallel_partitioned_matmul(
            a, b, plan.partition, block_size=4, max_workers=3
        )
        np.testing.assert_allclose(c, a @ b, rtol=1e-10, atol=1e-8)
        assert report.workers_used == 3
