"""Scalar-vs-vector equivalence of the SPMD panel-loop simulation."""

import numpy as np
import pytest

from repro.core.speed_function import SpeedFunction
from repro.obs import Tracer, use_tracer
from repro.runtime.mpi_sim import CommModel, SimulatedComm
from repro.runtime.panel_loop import (
    PanelLoopResult,
    simulate_panel_loop,
    simulate_spmd_run,
)


def ramped(peak, half):
    sizes = [half / 4, half, 2 * half, 8 * half, 32 * half]
    return SpeedFunction.from_points(
        sizes, [peak * s / (s + half) for s in sizes]
    )


def assert_identical(a: PanelLoopResult, b: PanelLoopResult) -> None:
    assert a.total_time_s == b.total_time_s
    assert a.comm_time_s == b.comm_time_s
    assert a.compute_time_s == b.compute_time_s
    assert a.panel_finish_s == b.panel_finish_s
    assert a.events_processed == b.events_processed


class TestPanelLoop:
    def test_single_device_single_panel(self):
        result = simulate_panel_loop([2.0], 1, 0.5)
        assert result.total_time_s == 2.5
        assert result.compute_time_s == (2.0,)
        assert result.events_processed == 1

    def test_panels_are_barrier_synchronised(self):
        result = simulate_panel_loop([1.0, 3.0], 2, 0.5)
        # each panel takes comm + slowest compute
        assert result.panel_finish_s == (3.5, 7.0)
        assert result.total_time_s == 7.0
        assert result.compute_time_s == (2.0, 6.0)
        assert result.events_processed == 4

    def test_scalar_and_vector_lanes_bit_identical(self):
        rng = np.random.default_rng(11)
        compute = rng.uniform(0.1, 5.0, size=37)
        vec = simulate_panel_loop(compute, 13, 0.25, engine="vector")
        sca = simulate_panel_loop(compute, 13, 0.25, engine="scalar")
        assert_identical(vec, sca)

    def test_equal_times_and_zero_compute(self):
        compute = np.array([2.0, 2.0, 0.0, 2.0])
        vec = simulate_panel_loop(compute, 3, engine="vector")
        sca = simulate_panel_loop(compute, 3, engine="scalar")
        assert_identical(vec, sca)
        assert vec.total_time_s == 6.0

    def test_result_statistics(self):
        result = simulate_panel_loop([1.0, 2.0], 2)
        assert result.makespan_computation_s == 4.0
        assert result.imbalance == 4.0 / 2.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            simulate_panel_loop([], 3)
        with pytest.raises(ValueError):
            simulate_panel_loop([1.0], 0)
        with pytest.raises(ValueError):
            simulate_panel_loop([-1.0], 1)
        with pytest.raises(ValueError):
            simulate_panel_loop([1.0], 1, engine="warp")

    def test_emits_runtime_sim_metrics(self):
        tracer = Tracer()
        with use_tracer(tracer):
            simulate_panel_loop([1.0, 2.0], 4, 0.1, engine="vector")
        counters = tracer.metrics.counters
        assert counters["runtime.sim.panels"].value == 4
        assert counters["runtime.sim.device_events"].value == 8
        assert counters["runtime.sim.runs.vector"].value == 1
        assert tracer.metrics.histograms["runtime.sim.panel_s"].count == 4


class TestSimulatedSpmdRun:
    @pytest.fixture()
    def models(self):
        return [ramped(20.0 + 3 * i, 10.0 + 7 * i) for i in range(9)]

    def test_engines_bit_identical_without_comm(self, models):
        alloc = [40.0 + 11 * i for i in range(len(models))]
        vec = simulate_spmd_run(models, alloc, 7, engine="vector")
        sca = simulate_spmd_run(models, alloc, 7, engine="scalar")
        assert_identical(vec, sca)

    def test_engines_bit_identical_with_comm(self, models):
        comm = SimulatedComm(len(models), CommModel())
        alloc = [40.0 + 11 * i for i in range(len(models))]
        vec = simulate_spmd_run(models, alloc, 5, comm=comm, engine="vector")
        sca = simulate_spmd_run(models, alloc, 5, comm=comm, engine="scalar")
        assert_identical(vec, sca)
        assert vec.comm_time_s > 0.0

    def test_explicit_recv_blocks(self, models):
        comm = SimulatedComm(len(models), CommModel())
        alloc = [50.0] * len(models)
        recv = [4.0 * (i + 1) for i in range(len(models))]
        vec = simulate_spmd_run(
            models, alloc, 3, comm=comm, recv_blocks=recv, engine="vector"
        )
        sca = simulate_spmd_run(
            models, alloc, 3, comm=comm, recv_blocks=recv, engine="scalar"
        )
        assert_identical(vec, sca)

    def test_rejects_mismatched_allocations(self, models):
        with pytest.raises(ValueError):
            simulate_spmd_run(models, [1.0, 2.0], 3)
