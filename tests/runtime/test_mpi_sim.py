"""Unit tests for the simulated communicator."""

import math

import pytest

from repro.runtime.mpi_sim import CommModel, SimulatedComm


class TestCommModel:
    def test_p2p_latency_plus_bandwidth(self):
        m = CommModel(latency_s=1e-5, bandwidth_gbs=2.0)
        assert m.p2p_time(2e9) == pytest.approx(1.0 + 1e-5)

    def test_zero_bytes_free(self):
        assert CommModel().p2p_time(0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CommModel().p2p_time(-1)


class TestBroadcast:
    def test_single_rank_free(self):
        assert SimulatedComm(1).bcast_time(1e6) == 0.0

    def test_two_ranks_one_hop(self):
        comm = SimulatedComm(2)
        assert comm.bcast_time(1e6) == pytest.approx(comm.model.p2p_time(1e6))

    def test_binomial_depth(self):
        """p ranks complete in ceil(log2 p) rounds of equal hops."""
        comm = SimulatedComm(8)
        hop = comm.model.p2p_time(1e6)
        assert comm.bcast_time(1e6) == pytest.approx(3 * hop)

    def test_non_power_of_two(self):
        comm = SimulatedComm(24)
        hop = comm.model.p2p_time(1e6)
        t = comm.bcast_time(1e6)
        assert 4 * hop <= t <= 5 * hop + 1e-12

    def test_partial_participants(self):
        comm = SimulatedComm(16)
        assert comm.bcast_time(1e6, participants=4) < comm.bcast_time(1e6)

    def test_rejects_bad_participants(self):
        with pytest.raises(ValueError):
            SimulatedComm(4).bcast_time(1.0, participants=5)

    def test_monotone_in_size(self):
        comm = SimulatedComm(8)
        assert comm.bcast_time(2e6) > comm.bcast_time(1e6)


class TestScatterAllgatherReduce:
    def test_scatter_single_rank_free(self):
        assert SimulatedComm(1).scatter_time(1e6) == 0.0

    def test_scatter_halving_payloads(self):
        comm = SimulatedComm(8)
        per = 1e6
        expected = (
            comm.model.p2p_time(4 * per)
            + comm.model.p2p_time(2 * per)
            + comm.model.p2p_time(per)
        )
        assert comm.scatter_time(per) == pytest.approx(expected)

    def test_scatter_cheaper_than_p_sends(self):
        comm = SimulatedComm(16)
        naive = 15 * comm.model.p2p_time(1e6)
        assert comm.scatter_time(1e6) < naive

    def test_allgather_doubling(self):
        comm = SimulatedComm(8)
        per = 1e6
        expected = sum(comm.model.p2p_time(per * 2**k) for k in range(3))
        assert comm.allgather_time(per) == pytest.approx(expected)

    def test_allgather_matches_gather_for_equal_contributions(self):
        comm = SimulatedComm(8)
        assert comm.allgather_time(1e6) == pytest.approx(comm.gather_time(1e6))

    def test_reduce_constant_payload(self):
        comm = SimulatedComm(8)
        assert comm.reduce_time(1e6) == pytest.approx(
            3 * comm.model.p2p_time(1e6)
        )

    def test_reduce_cheaper_than_gather_for_large_p(self):
        comm = SimulatedComm(32)
        assert comm.reduce_time(1e6) < comm.gather_time(1e6)

    def test_zero_bytes_free_everywhere(self):
        comm = SimulatedComm(8)
        assert comm.scatter_time(0) == 0.0
        assert comm.allgather_time(0) == 0.0
        assert comm.reduce_time(0) == 0.0


class TestGatherAndBarrier:
    def test_gather_zero_for_single(self):
        assert SimulatedComm(1).gather_time(100) == 0.0

    def test_gather_grows_with_payload(self):
        comm = SimulatedComm(8)
        assert comm.gather_time(2e6) > comm.gather_time(1e6)

    def test_gather_accounts_growing_messages(self):
        comm = SimulatedComm(8)
        per_rank = 1e6
        # rounds carry 1, 2, 4 contributions
        expected = sum(
            comm.model.p2p_time(per_rank * (2**k)) for k in range(3)
        )
        assert comm.gather_time(per_rank) == pytest.approx(expected)

    def test_barrier_log_depth(self):
        comm = SimulatedComm(24, CommModel(latency_s=1e-6))
        assert comm.barrier_time() == pytest.approx(5e-6)

    def test_barrier_single(self):
        assert SimulatedComm(1).barrier_time() == 0.0

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            SimulatedComm(0)


class TestFastCollectives:
    """Closed-form / vectorised twins of the event-simulated collectives."""

    def test_bcast_fast_bit_identical_to_event_tree(self):
        comm = SimulatedComm(64, CommModel(latency_s=3e-6, bandwidth_gbs=1.7))
        for p in range(1, 65):
            assert comm.bcast_time_fast(123_456, p) == comm.bcast_time(
                123_456, p
            ), f"divergence at p={p}"

    def test_bcast_fast_zero_bytes_free(self):
        assert SimulatedComm(8).bcast_time_fast(0) == 0.0

    def test_bcast_fast_rejects_bad_participants(self):
        comm = SimulatedComm(4)
        with pytest.raises(ValueError):
            comm.bcast_time_fast(100, 5)

    def test_pivot_bcast_array_matches_scalar(self):
        import numpy as np

        comm = SimulatedComm(16)
        blocks = [3.0, 41.5, 7.25, 0.0, 19.0]
        scalar = comm.pivot_bcast_time(blocks, 640)
        vector = comm.pivot_bcast_time(np.array(blocks), 640)
        assert vector == scalar

    def test_pivot_bcast_empty_array(self):
        import numpy as np

        comm = SimulatedComm(4)
        assert comm.pivot_bcast_time(np.array([]), 640) == 0.0
