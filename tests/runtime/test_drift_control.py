"""Drift detection + hysteresis-gated repartitioning: controller and runs."""

import math

import pytest

from repro.app.matmul import HybridMatMul
from repro.core.fpm import as_speed_function
from repro.core.integer import refine_integer_partition, round_partition
from repro.core.solver import Solver
from repro.platform.drift import DriftModel
from repro.platform.faults import DeviceDrop
from repro.platform.noise import NoiseModel
from repro.platform.presets import ig_icl_node
from repro.runtime.drift_control import (
    DriftControlPolicy,
    DriftController,
    run_with_drift_control,
)
from repro.util.rng import RngStream

N = 40
GTX = "GeForce GTX680"
C870 = "Tesla C870"

STEP = "throttle:GTX680:t0=2,tau=0,floor=0.5"
RAMP = "throttle:GTX680:t0=2,tau=10,floor=0.45"


@pytest.fixture(scope="module")
def app():
    """The paper's node with fast models covering the test sizes."""
    application = HybridMatMul(ig_icl_node(), seed=7, noise_sigma=0.01)
    application.build_models(
        max_blocks=1700.0, cpu_points=6, gpu_points=8, adaptive=False
    )
    return application


@pytest.fixture()
def noise():
    return NoiseModel(RngStream(123).child("panel-noise"), sigma=0.01)


def _drift(spec):
    return DriftModel.from_spec(spec, seed=11)


class TestDriftControlPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"slack": 0.0},
            {"threshold": 0.0},
            {"cooldown_panels": -1},
            {"commit_margin": -0.1},
            {"resolve_cost_s": -1.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            DriftControlPolicy(**kwargs)


class TestDriftController:
    EXPECTED = {"gpu0": 0.5, "cpu0": 0.25}

    def test_matching_observations_never_trigger(self):
        ctl = DriftController(self.EXPECTED)
        for _ in range(100):
            assert ctl.observe(self.EXPECTED) is None
        assert ctl.detections == 0

    def test_noise_below_slack_never_triggers(self):
        ctl = DriftController(self.EXPECTED, DriftControlPolicy(slack=0.05))
        for k in range(200):
            wiggle = 1.0 + 0.02 * math.sin(k * 1.7)  # |log| < slack
            obs = {n: e * wiggle for n, e in self.EXPECTED.items()}
            assert ctl.observe(obs) is None

    def test_sustained_slowdown_triggers_with_onset_estimate(self):
        ctl = DriftController(
            self.EXPECTED, DriftControlPolicy(slack=0.05, threshold=0.4)
        )
        inflation = None
        for _ in range(10):
            obs = dict(self.EXPECTED)
            obs["gpu0"] = self.EXPECTED["gpu0"] * 2.0  # half speed
            inflation = ctl.observe(obs)
            if inflation is not None:
                break
        assert inflation is not None
        assert inflation["gpu0"] == pytest.approx(2.0)
        assert inflation["cpu0"] == pytest.approx(1.0)

    def test_speedup_triggers_negative_side(self):
        ctl = DriftController(self.EXPECTED)
        inflation = None
        for _ in range(10):
            obs = dict(self.EXPECTED)
            obs["gpu0"] = self.EXPECTED["gpu0"] / 1.8
            inflation = ctl.observe(obs)
            if inflation is not None:
                break
        assert inflation is not None
        assert inflation["gpu0"] == pytest.approx(1.0 / 1.8)

    def test_recalibration_is_hysteresis(self):
        """After recalibrating to the drifted reality, no re-trigger."""
        ctl = DriftController(self.EXPECTED)
        drifted = {n: e for n, e in self.EXPECTED.items()}
        drifted["gpu0"] *= 2.0
        while ctl.observe(drifted) is None:
            pass
        ctl.recalibrate(drifted)
        for _ in range(300):
            assert ctl.observe(drifted) is None
        assert ctl.detections == 1

    def test_cooldown_suppresses_detection(self):
        ctl = DriftController(
            self.EXPECTED,
            DriftControlPolicy(cooldown_panels=5, threshold=0.1),
        )
        ctl.recalibrate(self.EXPECTED)  # arms the cooldown
        drifted = dict(self.EXPECTED, gpu0=self.EXPECTED["gpu0"] * 3.0)
        outcomes = [ctl.observe(drifted) is not None for _ in range(6)]
        assert outcomes == [False] * 5 + [True]

    def test_drop_unit_forgotten(self):
        ctl = DriftController(self.EXPECTED)
        ctl.drop_unit("gpu0")
        assert ctl.units == ("cpu0",)
        assert ctl.observe({"cpu0": 0.25}) is None

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ValueError):
            DriftController({})
        with pytest.raises(ValueError):
            DriftController({"gpu0": 0.0})
        ctl = DriftController(self.EXPECTED)
        with pytest.raises(ValueError):
            ctl.observe({"gpu0": -1.0, "cpu0": 0.25})


class TestRunModes:
    def test_rejects_unknown_mode(self, app):
        with pytest.raises(ValueError):
            run_with_drift_control(app, N, _drift(""), mode="psychic")

    def test_pure_noise_zero_repartitions(self, app, noise):
        result = run_with_drift_control(
            app, N, _drift(""), mode="controller", noise=noise
        )
        assert result.commits == 0
        assert result.rejects == 0
        assert result.detections == 0
        assert result.blocks_migrated == 0

    def test_step_throttle_exactly_one_repartition(self, app, noise):
        result = run_with_drift_control(
            app, N, _drift(STEP), mode="controller", noise=noise
        )
        assert result.commits == 1
        assert result.detections == 1

    def test_step_controller_beats_static(self, app, noise):
        static = run_with_drift_control(
            app, N, _drift(STEP), mode="static", noise=noise
        )
        controlled = run_with_drift_control(
            app, N, _drift(STEP), mode="controller", noise=noise
        )
        assert static.commits == 0
        assert controlled.total_time_s < static.total_time_s

    def test_ramp_controller_recovers_half_oracle_gain(self, app, noise):
        runs = {
            mode: run_with_drift_control(
                app, N, _drift(RAMP), mode=mode, noise=noise
            )
            for mode in ("static", "controller", "oracle")
        }
        gain_ctl = runs["static"].total_time_s - runs["controller"].total_time_s
        gain_oracle = runs["static"].total_time_s - runs["oracle"].total_time_s
        assert gain_oracle > 0
        assert gain_ctl >= 0.5 * gain_oracle

    def test_deterministic(self, app, noise):
        a = run_with_drift_control(
            app, N, _drift(STEP), mode="controller", noise=noise
        )
        b = run_with_drift_control(
            app, N, _drift(STEP), mode="controller", noise=noise
        )
        assert a.total_time_s == b.total_time_s
        assert a.repartitions == b.repartitions
        assert a.final_unit_allocations == b.final_unit_allocations

    def test_commit_shifts_work_off_the_throttled_gpu(self, app, noise):
        result = run_with_drift_control(
            app, N, _drift(STEP), mode="controller", noise=noise
        )
        gtx = result.unit_names.index(GTX)
        assert result.final_unit_allocations[gtx] < \
            result.baseline_unit_allocations[gtx]
        assert sum(result.final_unit_allocations) == N * N
        assert result.blocks_migrated > 0
        assert result.switch_time_s > 0.0

    def test_commit_gate_prices_gain_against_cost(self, app, noise):
        result = run_with_drift_control(
            app, N, _drift(STEP), mode="controller", noise=noise
        )
        policy = DriftControlPolicy()
        for event in result.repartitions:
            if event.committed:
                assert event.predicted_gain_s > (
                    (1.0 + policy.commit_margin) * event.cost_s
                )

    def test_expensive_switch_is_rejected_but_recalibrated(self, app, noise):
        # A prohibitive migration price makes the gain gate refuse the
        # switch; hysteresis still recalibrates, so exactly one decision.
        from repro.runtime.recovery import RecoveryPolicy

        policy = DriftControlPolicy(
            recovery=RecoveryPolicy(migration_cost_per_block=1e3)
        )
        result = run_with_drift_control(
            app, N, _drift(STEP), policy, mode="controller", noise=noise
        )
        assert result.commits == 0
        assert result.rejects == 1
        assert result.blocks_migrated == 0
        assert result.final_unit_allocations == \
            result.baseline_unit_allocations

    def test_static_mode_never_reacts(self, app, noise):
        result = run_with_drift_control(
            app, N, _drift(RAMP), mode="static", noise=noise
        )
        assert result.commits == 0 and result.rejects == 0
        assert result.final_unit_allocations == \
            result.baseline_unit_allocations


class TestDropsUnderDrift:
    def test_duplicate_drop_clauses_rejected(self, app):
        drops = [DeviceDrop(1.0, C870), DeviceDrop(5.0, C870)]
        with pytest.raises(ValueError, match="at most once"):
            run_with_drift_control(app, N, _drift(""), drops=drops)

    def test_unknown_drop_device_rejected(self, app):
        with pytest.raises(ValueError, match="not on this node"):
            run_with_drift_control(
                app, N, _drift(""), drops=[DeviceDrop(1.0, "no-such-gpu")]
            )

    def test_drop_composes_with_controller(self, app, noise):
        result = run_with_drift_control(
            app,
            N,
            _drift(STEP),
            mode="controller",
            noise=noise,
            drops=[DeviceDrop(30.0, C870)],
        )
        assert [d.device for d in result.drops] == [C870]
        c870 = result.unit_names.index(C870)
        assert result.final_unit_allocations[c870] == 0
        assert sum(result.final_unit_allocations) == N * N
        assert result.commits == 1  # the step still repartitions once

    def test_drop_mid_repartition_no_double_apply(self, app, noise):
        """A drop landing inside the switch window must re-solve from the
        warm chain with ONLY the dropped row — the committed model
        rescale must not be applied a second time."""
        clean = run_with_drift_control(
            app, N, _drift(STEP), mode="controller", noise=noise
        )
        commit = next(e for e in clean.repartitions if e.committed)
        assert commit.cost_s > 0.0
        drop_time = commit.time_s + commit.cost_s / 2.0  # mid-switch
        result = run_with_drift_control(
            app,
            N,
            _drift(STEP),
            mode="controller",
            noise=noise,
            drops=[DeviceDrop(drop_time, C870)],
        )
        assert [d.device for d in result.drops] == [C870]
        # The drop interrupted the switch: the committed scales at that
        # moment are the commit event's.  An exact warm resolve over the
        # survivors must equal a COLD solve of the scaled survivor
        # models — double-applied scales would change the allocations.
        units = app.compute_units()
        scales = dict(zip([u.name for u in units], commit.speed_scales))
        survivors = [u for u in units if u.name != C870]
        fns = [
            as_speed_function(m).scaled(scales[u.name])
            for u, m in zip(units, app.models_for(units))
            if u.name != C870
        ]
        cold = Solver().solve(fns, float(N * N))
        expected = refine_integer_partition(
            fns, round_partition(fns, list(cold.allocations), N * N)
        )
        final_by_name = dict(
            zip(result.unit_names, result.final_unit_allocations)
        )
        assert [final_by_name[u.name] for u in survivors] == expected
        assert final_by_name[C870] == 0

    def test_drop_then_step_both_handled(self, app, noise):
        result = run_with_drift_control(
            app,
            N,
            _drift(STEP),
            mode="controller",
            noise=noise,
            drops=[DeviceDrop(0.5, C870)],  # before the throttle strikes
        )
        assert [d.device for d in result.drops] == [C870]
        assert result.commits == 1
        gtx = result.unit_names.index(GTX)
        assert result.final_unit_allocations[gtx] < N * N
        assert sum(result.final_unit_allocations) == N * N
