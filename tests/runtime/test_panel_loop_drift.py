"""Drifted panel-loop runs: vector/scalar bit-identity and semantics."""

import numpy as np
import pytest

from repro.platform.drift import DriftModel
from repro.runtime.panel_loop import simulate_panel_loop

COMPUTE = [0.21, 0.13, 0.34, 0.08]
NAMES = ["GeForce GTX680", "Tesla C870", "socket0", "socket1"]


def _model(spec="jitter:*:sigma=0.15; throttle:GTX680:t0=0.5,tau=1,floor=0.5"):
    return DriftModel.from_spec(spec, seed=31)


class TestDriftedPanelLoop:
    def test_engines_bit_identical_under_drift(self):
        results = {
            engine: simulate_panel_loop(
                COMPUTE,
                panels=12,
                comm_s=0.01,
                engine=engine,
                drift=_model(),
                device_names=NAMES,
            )
            for engine in ("vector", "scalar")
        }
        vec, sca = results["vector"], results["scalar"]
        assert vec.total_time_s == sca.total_time_s
        assert vec.panel_finish_s == sca.panel_finish_s
        assert vec.compute_time_s == sca.compute_time_s
        assert vec.events_processed == sca.events_processed

    def test_throttle_slows_the_run(self):
        drift = _model("throttle:*:t0=0,tau=0,floor=0.5")
        steady = simulate_panel_loop(COMPUTE, panels=10, comm_s=0.01)
        throttled = simulate_panel_loop(
            COMPUTE,
            panels=10,
            comm_s=0.01,
            drift=drift,
            device_names=NAMES,
        )
        # every device at half speed: compute exactly doubles
        assert throttled.compute_time_s == tuple(
            2.0 * t for t in steady.compute_time_s
        )
        assert throttled.total_time_s > steady.total_time_s

    def test_inert_drift_bit_identical_to_no_drift(self):
        plain = simulate_panel_loop(COMPUTE, panels=8, comm_s=0.02)
        inert = simulate_panel_loop(
            COMPUTE,
            panels=8,
            comm_s=0.02,
            drift=DriftModel.from_spec("", seed=31),
            device_names=NAMES,
        )
        assert plain.total_time_s == inert.total_time_s
        assert plain.panel_finish_s == inert.panel_finish_s
        assert plain.compute_time_s == inert.compute_time_s

    def test_multipliers_sampled_at_panel_start(self):
        # A throttle striking MID-panel leaves that panel untouched (its
        # multiplier was sampled at the panel's start instant) and only
        # stretches panels that start after t0.
        drift = DriftModel.from_spec(
            "throttle:socket0:t0=0.1,tau=0,floor=0.5", seed=31
        )
        result = simulate_panel_loop(
            COMPUTE, panels=2, drift=drift, device_names=NAMES
        )
        first = result.panel_finish_s[0]
        assert first == max(COMPUTE)  # panel 1 sampled at t=0: undrifted
        assert result.panel_finish_s[1] == first + 2.0 * max(COMPUTE)

    def test_drift_requires_device_names(self):
        with pytest.raises(ValueError, match="device_names"):
            simulate_panel_loop(COMPUTE, panels=2, drift=_model())

    def test_device_names_length_checked(self):
        with pytest.raises(ValueError, match="device_names"):
            simulate_panel_loop(
                COMPUTE,
                panels=2,
                drift=_model(),
                device_names=["just-one"],
            )

    def test_jitter_varies_per_panel_but_deterministic(self):
        drift = _model("jitter:*:sigma=0.2,w=0.25")
        a = simulate_panel_loop(
            COMPUTE, panels=6, drift=drift, device_names=NAMES
        )
        b = simulate_panel_loop(
            COMPUTE, panels=6, drift=drift, device_names=NAMES
        )
        assert a.panel_finish_s == b.panel_finish_s
        lengths = np.diff(np.array((0.0,) + a.panel_finish_s))
        assert len(set(np.round(lengths, 12))) > 1
