"""Degraded-mode repartitioning: event cancellation, shrink, recovery runs."""

import pytest

from repro.app.matmul import HybridMatMul
from repro.platform.faults import DeviceDrop, FaultPlan
from repro.platform.presets import ig_icl_node
from repro.runtime.event_sim import EventSimulator
from repro.runtime.mpi_sim import SimulatedComm
from repro.runtime.recovery import (
    RecoveryError,
    RecoveryPolicy,
    run_with_recovery,
)

N = 40
GTX = "GeForce GTX680"
C870 = "Tesla C870"


@pytest.fixture(scope="module")
def app():
    """The paper's node with fast models covering the test sizes."""
    application = HybridMatMul(ig_icl_node(), seed=7, noise_sigma=0.01)
    application.build_models(
        max_blocks=1700.0, cpu_points=6, gpu_points=8, adaptive=False
    )
    return application


class TestEventCancellation:
    def test_cancelled_event_never_fires(self):
        sim = EventSimulator()
        seen = []
        handle = sim.schedule(1.0, lambda s: seen.append("cancelled"))
        sim.schedule(2.0, lambda s: seen.append("kept"))
        handle.cancel()
        assert handle.cancelled
        end = sim.run()
        assert seen == ["kept"]
        assert end == 2.0

    def test_cancelled_events_do_not_advance_the_clock(self):
        sim = EventSimulator()
        sim.schedule(5.0, lambda s: None).cancel()
        sim.schedule(1.0, lambda s: None)
        assert sim.run() == 1.0

    def test_cancellation_from_inside_a_handler(self):
        sim = EventSimulator()
        seen = []
        later = sim.schedule(2.0, lambda s: seen.append("too late"))
        sim.schedule(1.0, lambda s: later.cancel())
        sim.run()
        assert seen == []


class TestCommShrink:
    def test_shrink_preserves_cost_model(self):
        comm = SimulatedComm(13)
        shrunk = comm.shrink(5)
        assert shrunk.size == 5
        assert shrunk.model == comm.model
        assert shrunk.bcast_time(4096.0) < comm.bcast_time(4096.0)

    def test_shrink_validates_bounds(self):
        with pytest.raises(ValueError):
            SimulatedComm(4).shrink(0)
        with pytest.raises(ValueError):
            SimulatedComm(4).shrink(5)


class TestRecoveryInvariants:
    def test_drop_reassigns_everything_to_survivors(self, app):
        drop = DeviceDrop(time_s=0.5, device=GTX)
        result = run_with_recovery(app, N, drops=(drop,))
        index = result.unit_names.index(GTX)
        assert result.degraded_unit_allocations[index] == 0
        assert sum(result.degraded_unit_allocations) == N * N
        assert sum(result.baseline_unit_allocations) == N * N
        assert result.recovery_time_s > result.fault_free_time_s
        assert result.overhead_fraction > 0.0
        assert result.blocks_migrated > 0
        assert result.degraded_panels > 0
        assert result.drops[0].device == GTX

    def test_deterministic_across_runs(self, app):
        drop = DeviceDrop(time_s=0.5, device=GTX)
        a = run_with_recovery(app, N, drops=(drop,))
        b = run_with_recovery(app, N, drops=(drop,))
        assert a == b

    def test_fault_plan_equals_explicit_drops(self, app):
        plan = FaultPlan.from_spec(f"drop:{GTX}:t=0.5", seed=7)
        via_plan = run_with_recovery(app, N, drops=plan)
        explicit = run_with_recovery(
            app, N, drops=(DeviceDrop(time_s=0.5, device=GTX),)
        )
        assert via_plan == explicit

    def test_observed_strategy_also_balances(self, app):
        drop = DeviceDrop(time_s=0.5, device=GTX)
        result = run_with_recovery(
            app, N, drops=(drop,), policy=RecoveryPolicy(strategy="observed")
        )
        assert result.strategy == "observed"
        assert sum(result.degraded_unit_allocations) == N * N
        assert result.degraded_unit_allocations[result.unit_names.index(GTX)] == 0

    def test_two_drop_cascade(self, app):
        drops = (
            DeviceDrop(time_s=0.3, device=GTX),
            DeviceDrop(time_s=0.9, device=C870),
        )
        result = run_with_recovery(app, N, drops=drops)
        degraded = dict(zip(result.unit_names, result.degraded_unit_allocations))
        assert degraded[GTX] == 0 and degraded[C870] == 0
        assert sum(result.degraded_unit_allocations) == N * N
        assert len(result.drops) == 2

    def test_late_drop_is_ignored(self, app):
        fault_free = run_with_recovery(app, N, drops=()).fault_free_time_s
        late = DeviceDrop(time_s=fault_free * 10, device=GTX)
        result = run_with_recovery(app, N, drops=(late,))
        assert result.ignored_drops == (late,)
        assert result.drops == ()
        assert result.recovery_time_s == pytest.approx(fault_free)
        assert result.degraded_unit_allocations == result.baseline_unit_allocations

    def test_unknown_device_rejected(self, app):
        with pytest.raises(ValueError, match="not on this node"):
            run_with_recovery(
                app, N, drops=(DeviceDrop(time_s=0.1, device="no-such-gpu"),)
            )

    def test_duplicate_drop_rejected(self, app):
        drops = (
            DeviceDrop(time_s=0.1, device=GTX),
            DeviceDrop(time_s=0.2, device=GTX),
        )
        with pytest.raises(ValueError, match="at most once"):
            run_with_recovery(app, N, drops=drops)

    def test_no_survivors_raises(self, app):
        drops = tuple(
            DeviceDrop(time_s=0.1 * (i + 1), device=unit.name)
            for i, unit in enumerate(app.compute_units())
        )
        with pytest.raises(RecoveryError, match="no surviving"):
            run_with_recovery(app, N, drops=drops)


@pytest.mark.property
class TestRecoveryProperty:
    def test_invariants_hold_across_drop_times(self, app):
        """Whenever the drop lands mid-run, the degraded plan re-tiles
        the full workload over the survivors and costs extra makespan."""
        fault_free = run_with_recovery(app, N, drops=()).fault_free_time_s
        for fraction in (0.05, 0.2, 0.4, 0.6, 0.8, 0.95):
            drop = DeviceDrop(time_s=fraction * fault_free, device=GTX)
            result = run_with_recovery(app, N, drops=(drop,))
            assert sum(result.degraded_unit_allocations) == N * N
            assert result.degraded_unit_allocations[
                result.unit_names.index(GTX)
            ] == 0
            assert result.recovery_time_s > fault_free
            # rerunning is bit-identical (the acceptance criterion)
            assert run_with_recovery(app, N, drops=(drop,)) == result


class TestOverheadFraction:
    def _result(self, fault_free, recovery):
        from repro.runtime.recovery import RecoveryResult

        return RecoveryResult(
            n=1,
            strategy="fpm",
            fault_free_time_s=fault_free,
            recovery_time_s=recovery,
            drops=(),
            ignored_drops=(),
            unit_names=("u",),
            baseline_unit_allocations=(1,),
            degraded_unit_allocations=(1,),
            blocks_migrated=0,
            migration_time_s=0.0,
            degraded_panels=0,
        )

    def test_zero_fault_free_time_returns_zero(self):
        """Regression: a zero-panel run must not divide by zero."""
        assert self._result(0.0, 0.0).overhead_fraction == 0.0
        assert self._result(0.0, 1.5).overhead_fraction == 0.0

    def test_normal_overhead_unchanged(self):
        assert self._result(2.0, 3.0).overhead_fraction == pytest.approx(0.5)
        assert self._result(2.0, 2.0).overhead_fraction == 0.0


class TestPlanSwitchCost:
    def test_counts_only_gained_blocks(self):
        from repro.runtime.mpi_sim import CommModel
        from repro.runtime.recovery import plan_switch_cost

        comm = SimulatedComm(4, CommModel())
        policy = RecoveryPolicy(migration_cost_per_block=0.001,
                                replan_nbytes=512.0)
        moved, seconds = plan_switch_cost(
            [10, 10, 10, 10], [4, 13, 13, 10], comm, policy
        )
        assert moved == 6  # 3 + 3 gained; the sender side is free
        assert seconds == pytest.approx(
            6 * 0.001 + comm.bcast_time(512.0)
        )

    def test_identical_plans_cost_only_the_broadcast(self):
        from repro.runtime.mpi_sim import CommModel
        from repro.runtime.recovery import plan_switch_cost

        comm = SimulatedComm(4, CommModel())
        policy = RecoveryPolicy()
        moved, seconds = plan_switch_cost([5, 5], [5, 5], comm, policy)
        assert moved == 0
        assert seconds == pytest.approx(comm.bcast_time(policy.replan_nbytes))

    def test_recovery_uses_the_shared_helper(self, app):
        """The run's migration charge decomposes exactly as the helper's
        formula over the baseline -> degraded allocation delta."""
        drop = DeviceDrop(time_s=1.0, device=GTX)
        result = run_with_recovery(app, N, drops=(drop,))
        assert result.blocks_migrated > 0
        policy = RecoveryPolicy()
        survivors = [
            u for u in app.compute_units() if u.name != GTX
        ]
        survivor_ranks = [r for u in survivors for r in u.member_ranks]
        comm = SimulatedComm(
            app.binding.num_processes, app.comm_model
        ).shrink(len(survivor_ranks))
        assert result.migration_time_s == pytest.approx(
            result.blocks_migrated * policy.migration_cost_per_block
            + comm.bcast_time(policy.replan_nbytes)
        )


class TestDuplicateDropClauses:
    def test_same_device_in_multiple_spec_clauses_merges_last_wins(self, app):
        """The fault-spec grammar merges per-device clauses, so a device
        named twice yields ONE drop at the last clause's time — the run
        must see a single drop, not a duplicate-device error."""
        plan = FaultPlan.from_spec(
            f"drop:{C870}:t=1; drop:{C870}:t=2.5", seed=3
        )
        assert len(plan.device_drops()) == 1
        assert plan.device_drops()[0].time_s == 2.5
        result = run_with_recovery(app, N, drops=plan)
        assert [d.device for d in result.drops] == [C870]
        assert result.drops[0].time_s == 2.5

    def test_same_device_twice_in_explicit_drops_still_rejected(self, app):
        drops = (
            DeviceDrop(time_s=1.0, device=C870),
            DeviceDrop(time_s=2.0, device=C870),
        )
        with pytest.raises(ValueError, match="at most once"):
            run_with_recovery(app, N, drops=drops)
