"""Property-based tests of the discrete-event engine (hypothesis).

The collectives' timing correctness rests on three engine invariants:
events fire in (time, insertion-sequence) order, the clock never runs
backwards, and identical schedules replay identically.  The batch lane
adds a fourth: ``schedule_batch`` must observe exactly the fire times
and orderings of the equivalent per-element ``schedule`` calls — also
when its generations interleave with scalar-lane events.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.speed_function import SpeedFunction
from repro.runtime.event_sim import EventSimulator
from repro.runtime.panel_loop import simulate_panel_loop, simulate_spmd_run

pytestmark = pytest.mark.property

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30
)


def _run_schedule(schedule: list[float]) -> list[tuple[float, int]]:
    """Schedule every delay up front; return (fire time, label) in order."""
    sim = EventSimulator()
    fired: list[tuple[float, int]] = []
    for label, delay in enumerate(schedule):
        sim.schedule(delay, lambda s, label=label: fired.append((s.now, label)))
    sim.run()
    return fired


@given(delays)
def test_events_fire_in_time_then_insertion_order(schedule):
    fired = _run_schedule(schedule)
    assert len(fired) == len(schedule)
    for (t0, l0), (t1, l1) in zip(fired, fired[1:]):
        assert t0 <= t1
        if t0 == t1:
            assert l0 < l1  # determinism: ties break by insertion sequence


@given(delays, st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=5))
def test_clock_is_monotone_under_nested_scheduling(schedule, follow_ups):
    sim = EventSimulator()
    observed: list[float] = []

    def action(s: EventSimulator) -> None:
        observed.append(s.now)
        for extra in follow_ups:
            s.schedule(extra, lambda s2: observed.append(s2.now))

    for delay in schedule:
        sim.schedule(delay, action)
    end = sim.run()
    assert observed == sorted(observed)
    assert sim.events_processed == len(observed)
    assert sim.pending == 0
    assert end == (max(observed) if observed else 0.0)


@given(delays)
def test_identical_schedules_replay_identically(schedule):
    assert _run_schedule(schedule) == _run_schedule(schedule)


@given(st.floats(min_value=0.0, max_value=50.0), st.integers(2, 10))
def test_simultaneous_events_fire_in_insertion_order(delay, n):
    fired = _run_schedule([delay] * n)
    assert [label for _, label in fired] == list(range(n))
    assert all(t == fired[0][0] for t, _ in fired)


# ---------------------------------------------------------------------------
# batch lane == scalar lane
# ---------------------------------------------------------------------------


@given(delays)
def test_batch_lane_observes_scalar_lane_order(schedule):
    """``schedule_batch`` fires every element at the scalar lane's time,
    in the scalar lane's tie order, regardless of how the generation is
    chunked into callbacks."""
    scalar = _run_schedule(schedule)

    sim = EventSimulator()
    fired: list[tuple[float, int]] = []

    def on_chunk(s, times, indices):
        fired.extend(zip(times.tolist(), indices.tolist()))

    sim.schedule_batch(schedule, on_chunk)
    end = sim.run()
    assert fired == scalar
    assert end == max(t for t, _ in scalar)
    assert sim.pending == 0


@given(
    delays,
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=10),
)
def test_batch_lane_interleaves_with_scalar_events(batch, extras):
    """A mixed schedule fires in one global (time, insertion) order.

    The oracle runs everything through the scalar lane; the subject
    pushes ``batch`` through ``schedule_batch`` first (so its sequence
    numbers precede the scalar extras, as in the oracle)."""
    oracle = _run_schedule(list(batch) + list(extras))

    sim = EventSimulator()
    fired: list[tuple[float, int]] = []

    def on_chunk(s, times, indices):
        fired.extend(zip(times.tolist(), indices.tolist()))

    sim.schedule_batch(batch, on_chunk)
    for label, delay in enumerate(extras):
        offset_label = len(batch) + label
        sim.schedule(
            delay,
            lambda s, lab=offset_label: fired.append((s.now, lab)),
        )
    sim.run()
    assert fired == oracle


@given(
    compute=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=20
    ),
    panels=st.integers(min_value=1, max_value=12),
    comm=st.floats(min_value=0.0, max_value=3.0),
)
@settings(deadline=None)
def test_panel_loop_engines_bit_identical(compute, panels, comm):
    vec = simulate_panel_loop(compute, panels, comm, engine="vector")
    sca = simulate_panel_loop(compute, panels, comm, engine="scalar")
    assert vec.total_time_s == sca.total_time_s
    assert vec.comm_time_s == sca.comm_time_s
    assert vec.compute_time_s == sca.compute_time_s
    assert vec.panel_finish_s == sca.panel_finish_s
    assert vec.events_processed == sca.events_processed


@given(
    seeds=st.lists(
        st.tuples(
            st.floats(min_value=5.0, max_value=100.0),  # peak speed
            st.floats(min_value=2.0, max_value=50.0),  # half-saturation
            st.floats(min_value=10.0, max_value=200.0),  # allocation
        ),
        min_size=1,
        max_size=8,
    ),
    panels=st.integers(min_value=1, max_value=8),
)
@settings(deadline=None, max_examples=40)
def test_spmd_run_engines_bit_identical(seeds, panels):
    models = []
    for peak, half, _ in seeds:
        sizes = [half / 2, half, 4 * half, 16 * half]
        models.append(
            SpeedFunction.from_points(
                sizes, [peak * s / (s + half) for s in sizes]
            )
        )
    alloc = [a for _, _, a in seeds]
    vec = simulate_spmd_run(models, alloc, panels, engine="vector")
    sca = simulate_spmd_run(models, alloc, panels, engine="scalar")
    assert vec.total_time_s == sca.total_time_s
    assert vec.panel_finish_s == sca.panel_finish_s
    assert vec.compute_time_s == sca.compute_time_s
