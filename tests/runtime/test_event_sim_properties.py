"""Property-based tests of the discrete-event engine (hypothesis).

The collectives' timing correctness rests on three engine invariants:
events fire in (time, insertion-sequence) order, the clock never runs
backwards, and identical schedules replay identically.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.event_sim import EventSimulator

pytestmark = pytest.mark.property

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30
)


def _run_schedule(schedule: list[float]) -> list[tuple[float, int]]:
    """Schedule every delay up front; return (fire time, label) in order."""
    sim = EventSimulator()
    fired: list[tuple[float, int]] = []
    for label, delay in enumerate(schedule):
        sim.schedule(delay, lambda s, label=label: fired.append((s.now, label)))
    sim.run()
    return fired


@given(delays)
def test_events_fire_in_time_then_insertion_order(schedule):
    fired = _run_schedule(schedule)
    assert len(fired) == len(schedule)
    for (t0, l0), (t1, l1) in zip(fired, fired[1:]):
        assert t0 <= t1
        if t0 == t1:
            assert l0 < l1  # determinism: ties break by insertion sequence


@given(delays, st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=5))
def test_clock_is_monotone_under_nested_scheduling(schedule, follow_ups):
    sim = EventSimulator()
    observed: list[float] = []

    def action(s: EventSimulator) -> None:
        observed.append(s.now)
        for extra in follow_ups:
            s.schedule(extra, lambda s2: observed.append(s2.now))

    for delay in schedule:
        sim.schedule(delay, action)
    end = sim.run()
    assert observed == sorted(observed)
    assert sim.events_processed == len(observed)
    assert sim.pending == 0
    assert end == (max(observed) if observed else 0.0)


@given(delays)
def test_identical_schedules_replay_identically(schedule):
    assert _run_schedule(schedule) == _run_schedule(schedule)


@given(st.floats(min_value=0.0, max_value=50.0), st.integers(2, 10))
def test_simultaneous_events_fire_in_insertion_order(delay, n):
    fired = _run_schedule([delay] * n)
    assert [label for _, label in fired] == list(range(n))
    assert all(t == fired[0][0] for t, _ in fired)
