"""The README's promises hold: code blocks run, referenced files exist."""

import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
README = (REPO / "README.md").read_text()


class TestReadme:
    def test_python_quickstart_block_runs(self):
        """Execute the README's first python code block verbatim."""
        blocks = re.findall(r"```python\n(.*?)```", README, flags=re.S)
        assert blocks, "README lost its python quickstart block"
        code = blocks[0]
        # shrink the model build so the doc test stays fast, but keep the
        # code otherwise verbatim
        code = code.replace("max_blocks=4000.0", "max_blocks=4000.0, cpu_points=6, gpu_points=8, adaptive=False")
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr
        assert "GTX680" in result.stdout

    def test_referenced_documents_exist(self):
        for name in ("DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO / name).exists(), name
        for match in re.findall(r"`examples/([a-z_]+\.py)`", README):
            assert (REPO / "examples" / match).exists(), match

    def test_cli_commands_in_readme_are_valid(self):
        """Every `python -m repro <experiment>` the README mentions parses."""
        from repro.cli import build_parser

        parser = build_parser()
        for match in re.findall(r"python -m repro ([\w-]+)", README):
            args = parser.parse_args([match])
            assert args.experiment == match

    def test_examples_directory_documented(self):
        listed = set(
            re.findall(r"`([a-z_]+\.py)`", (REPO / "examples" / "README.md").read_text())
        )
        actual = {p.name for p in (REPO / "examples").glob("*.py")}
        assert actual <= listed, actual - listed
